package memsim

import (
	"errors"
	"fmt"
	"sync"
)

// Page geometry. 4 KB pages match the paper's Linux target.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// PFN is a physical frame number, an index into a Machine's frame table.
type PFN uint64

// VPN is a virtual page number (virtual address >> PageShift).
type VPN uint64

// PageOf returns the VPN containing a virtual address.
func PageOf(vaddr uint64) VPN { return VPN(vaddr >> PageShift) }

// PageBase returns the first address of a VPN.
func (v VPN) Base() uint64 { return uint64(v) << PageShift }

// MachineID identifies a machine in the cluster; it doubles as the
// "mac_addr" argument of rmap.
type MachineID int

// frame is one physical page. Frames are reference counted so the kernel
// can keep shadow copies of registered memory alive after the producer
// exits (§4.1 "Management of the producer's memory lifecycle").
type frame struct {
	data []byte
	refs int
}

// ErrMachineCrashed is returned by checked frame reads after Crash: the
// machine's frames — including any shadow copies of registered state — are
// gone, and every remote access to them must surface an error the platform
// can recover from (§6 fault tolerance).
var ErrMachineCrashed = errors.New("memsim: machine crashed")

// Machine owns a pool of physical frames. It is safe for concurrent use:
// the TCP fabric serves one-sided reads from other goroutines.
type Machine struct {
	mu      sync.Mutex
	id      MachineID
	frames  []*frame
	free    []PFN
	live    int
	peak    int
	crashed bool
}

// NewMachine returns an empty machine.
func NewMachine(id MachineID) *Machine { return &Machine{id: id} }

// ID returns the machine's identifier.
func (m *Machine) ID() MachineID { return m.id }

// AllocFrame allocates a zeroed frame with refcount 1.
func (m *Machine) AllocFrame() PFN {
	m.mu.Lock()
	defer m.mu.Unlock()
	var pfn PFN
	if n := len(m.free); n > 0 {
		pfn = m.free[n-1]
		m.free = m.free[:n-1]
		m.frames[pfn] = &frame{data: make([]byte, PageSize), refs: 1}
	} else {
		pfn = PFN(len(m.frames))
		m.frames = append(m.frames, &frame{data: make([]byte, PageSize), refs: 1})
	}
	m.live++
	if m.live > m.peak {
		m.peak = m.live
	}
	return pfn
}

func (m *Machine) frameLocked(pfn PFN) *frame {
	if int(pfn) >= len(m.frames) || m.frames[pfn] == nil {
		panic(fmt.Sprintf("memsim: machine %d: bad PFN %d", m.id, pfn))
	}
	return m.frames[pfn]
}

// Ref increments a frame's reference count (shadow copies).
func (m *Machine) Ref(pfn PFN) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frameLocked(pfn).refs++
}

// Unref decrements a frame's reference count, freeing it at zero.
func (m *Machine) Unref(pfn PFN) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.frameLocked(pfn)
	f.refs--
	if f.refs < 0 {
		panic(fmt.Sprintf("memsim: machine %d: PFN %d refcount underflow", m.id, pfn))
	}
	if f.refs == 0 {
		m.frames[pfn] = nil
		m.free = append(m.free, pfn)
		m.live--
	}
}

// Refs reports a frame's current reference count.
func (m *Machine) Refs(pfn PFN) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frameLocked(pfn).refs
}

// Crash marks the machine failed: its frames become unreadable through the
// checked read path, so consumer page faults on rmapped pages surface as
// remote-fault errors. Crashing is permanent for the simulation's lifetime
// (a restarted machine would be a new Machine).
func (m *Machine) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = true
}

// Crashed reports whether the machine has failed.
func (m *Machine) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// ReadFrameErr is ReadFrame for remote access paths: it fails with
// ErrMachineCrashed instead of serving bytes from a dead machine.
func (m *Machine) ReadFrameErr(pfn PFN, off int, buf []byte) error {
	if off < 0 || off+len(buf) > PageSize {
		panic(fmt.Sprintf("memsim: ReadFrame out of range off=%d len=%d", off, len(buf)))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return fmt.Errorf("%w: machine %d", ErrMachineCrashed, m.id)
	}
	copy(buf, m.frameLocked(pfn).data[off:])
	return nil
}

// ReadFrame copies bytes out of a frame. This is the one-sided RDMA read
// path: it touches only frame storage, never an address space, mirroring
// CPU/OS bypass on the remote machine.
func (m *Machine) ReadFrame(pfn PFN, off int, buf []byte) {
	if off < 0 || off+len(buf) > PageSize {
		panic(fmt.Sprintf("memsim: ReadFrame out of range off=%d len=%d", off, len(buf)))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(buf, m.frameLocked(pfn).data[off:])
}

// WriteFrameErr is WriteFrame for remote access paths (replication
// pushes): it fails with ErrMachineCrashed instead of mutating a dead
// machine's frames.
func (m *Machine) WriteFrameErr(pfn PFN, off int, data []byte) error {
	if off < 0 || off+len(data) > PageSize {
		panic(fmt.Sprintf("memsim: WriteFrame out of range off=%d len=%d", off, len(data)))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return fmt.Errorf("%w: machine %d", ErrMachineCrashed, m.id)
	}
	copy(m.frameLocked(pfn).data[off:], data)
	return nil
}

// WriteFrame copies bytes into a frame (used by address spaces and the
// CoW-break path).
func (m *Machine) WriteFrame(pfn PFN, off int, data []byte) {
	if off < 0 || off+len(data) > PageSize {
		panic(fmt.Sprintf("memsim: WriteFrame out of range off=%d len=%d", off, len(data)))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.frameLocked(pfn).data[off:], data)
}

// CopyFrame duplicates src into a fresh frame and returns it (CoW break).
func (m *Machine) CopyFrame(src PFN) PFN {
	dst := m.AllocFrame()
	m.mu.Lock()
	copy(m.frames[dst].data, m.frames[src].data)
	m.mu.Unlock()
	return dst
}

// LiveFrames reports currently allocated frames (memory accounting for
// Fig 16a).
func (m *Machine) LiveFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live
}

// PeakFrames reports the high-water mark of allocated frames.
func (m *Machine) PeakFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// ResetPeak sets the high-water mark to the current live count, so an
// experiment can measure the peak of one phase.
func (m *Machine) ResetPeak() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peak = m.live
}

// LiveBytes is LiveFrames in bytes.
func (m *Machine) LiveBytes() int { return m.LiveFrames() * PageSize }

// PeakBytes is PeakFrames in bytes.
func (m *Machine) PeakBytes() int { return m.PeakFrames() * PageSize }
