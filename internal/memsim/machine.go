package memsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Page geometry. 4 KB pages match the paper's Linux target.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// PFN is a physical frame number, an index into a Machine's frame table.
type PFN uint64

// VPN is a virtual page number (virtual address >> PageShift).
type VPN uint64

// PageOf returns the VPN containing a virtual address.
func PageOf(vaddr uint64) VPN { return VPN(vaddr >> PageShift) }

// PageBase returns the first address of a VPN.
func (v VPN) Base() uint64 { return uint64(v) << PageShift }

// MachineID identifies a machine in the cluster; it doubles as the
// "mac_addr" argument of rmap.
type MachineID int

// Frame-lock striping (DESIGN.md §12). Frame state (bytes + refcount) is
// guarded by one of frameShardCount striped locks instead of a single
// machine mutex, so concurrent remote readers of disjoint regions never
// convoy. The shard function drops the two low PFN bits first: batched
// operations over the mostly-consecutive frames of a readahead window then
// take one lock per run of four frames, while independent fault streams
// (different regions, hence distant PFNs) still spread across shards.
const (
	frameShardCount = 64
	frameShardMask  = frameShardCount - 1
)

func frameShard(pfn PFN) int { return int(pfn>>2) & frameShardMask }

// frameLock is a cache-line padded mutex: neighbouring shards must not
// false-share under cross-machine read storms.
type frameLock struct {
	sync.Mutex
	_ [56]byte
}

// frame is one physical page. Frames are reference counted so the kernel
// can keep shadow copies of registered memory alive after the producer
// exits (§4.1 "Management of the producer's memory lifecycle"). A frame
// slot, once allocated, is never released: refs == 0 marks it free and its
// page buffer is retained for the next allocation of the same PFN — the
// steady-state fault path recycles buffers instead of allocating
// (zero-allocation contract, DESIGN.md §12).
type frame struct {
	data []byte
	refs int // guarded by the PFN's shard lock; 0 = free
}

// ErrMachineCrashed is returned by checked frame reads after Crash: the
// machine's frames — including any shadow copies of registered state — are
// gone, and every remote access to them must surface an error the platform
// can recover from (§6 fault tolerance).
var ErrMachineCrashed = errors.New("memsim: machine crashed")

// Machine owns a pool of physical frames. It is safe for concurrent use:
// the TCP fabric serves one-sided reads from other goroutines, and the
// parallel engine's worker groups hit a shared producer's frame table from
// many goroutines at once.
//
// Locking model (DESIGN.md §12): allocMu guards allocation state only
// (free list, high-water mark, live/peak accounting, frame-table growth);
// per-frame bytes and refcounts are guarded by 64 striped locks keyed by
// PFN. The frame table itself is a grow-only slice republished through an
// atomic pointer, so lookups never take a lock. allocMu and a shard lock
// are never held together (alloc initializes the frame after releasing
// allocMu; Unref pushes to the free list after releasing the shard lock),
// so there is no lock-order cycle.
type Machine struct {
	id      MachineID
	crashed atomic.Bool

	// frames is the grow-only frame table. Slots are written once (under
	// allocMu, on first allocation of that PFN) and the *frame objects are
	// reused forever after; growth copies into a fresh slice and publishes
	// it atomically.
	frames atomic.Pointer[[]*frame]

	allocMu sync.Mutex
	free    []PFN // LIFO: most recently freed is reused first
	next    int   // first never-allocated PFN
	live    int
	peak    int

	shards [frameShardCount]frameLock
}

// NewMachine returns an empty machine.
func NewMachine(id MachineID) *Machine {
	m := &Machine{id: id}
	empty := make([]*frame, 0)
	m.frames.Store(&empty)
	return m
}

// ID returns the machine's identifier.
func (m *Machine) ID() MachineID { return m.id }

// frame returns the slot for pfn without locking; the caller validates
// liveness (refs > 0) under the PFN's shard lock where the operation's
// semantics require it.
func (m *Machine) frame(pfn PFN) *frame {
	arr := *m.frames.Load()
	if int(pfn) >= len(arr) || arr[pfn] == nil {
		panic(fmt.Sprintf("memsim: machine %d: bad PFN %d", m.id, pfn))
	}
	return arr[pfn]
}

func (m *Machine) lock(pfn PFN) *frameLock { return &m.shards[frameShard(pfn)] }

// AllocFrame allocates a zeroed frame with refcount 1.
func (m *Machine) AllocFrame() PFN { return m.allocFrame(true) }

// AllocFrameUnzeroed allocates a frame with refcount 1 without clearing a
// recycled page buffer. Callers must overwrite the full page before the
// frame is published (the fetch paths do: a fabric read fills all 4 KB).
func (m *Machine) AllocFrameUnzeroed() PFN { return m.allocFrame(false) }

func (m *Machine) allocFrame(zero bool) PFN {
	m.allocMu.Lock()
	var pfn PFN
	var f *frame
	recycled := false
	if n := len(m.free); n > 0 {
		pfn = m.free[n-1]
		m.free = m.free[:n-1]
		f = (*m.frames.Load())[pfn]
		recycled = true
	} else {
		pfn = PFN(m.next)
		arr := *m.frames.Load()
		if m.next == len(arr) {
			grown := make([]*frame, max(64, len(arr)*2))
			copy(grown, arr)
			m.frames.Store(&grown)
			arr = grown
		}
		f = &frame{data: make([]byte, PageSize)}
		arr[pfn] = f
		m.next++
	}
	m.live++
	if m.live > m.peak {
		m.peak = m.live
	}
	m.allocMu.Unlock()

	// Initialize under the shard lock: the lock hand-off is what makes the
	// fresh refcount (and, for zeroed frames, the cleared bytes) visible to
	// the next goroutine that touches this PFN.
	s := m.lock(pfn)
	s.Lock()
	f.refs = 1
	if zero && recycled {
		clear(f.data)
	}
	s.Unlock()
	return pfn
}

// BorrowFrame exposes a frame's page buffer for direct filling — the fetch
// paths read fabric bytes straight into the frame, eliminating the staging
// buffer and its copy. The caller must hold the only reference (a frame
// fresh from AllocFrame/AllocFrameUnzeroed, not yet installed anywhere)
// and must call SealFrame (or publish the frame through an operation that
// takes its shard lock, e.g. a cache install's Ref) once filled.
func (m *Machine) BorrowFrame(pfn PFN) []byte {
	return m.frame(pfn).data
}

// SealFrame publishes raw writes made through BorrowFrame: acquiring the
// frame's shard lock orders the fill before any later shard-locked access
// from another goroutine.
func (m *Machine) SealFrame(pfn PFN) {
	s := m.lock(pfn)
	s.Lock()
	//lint:ignore SA2001 empty critical section is the point: the release →
	// acquire pair is the happens-before edge for the preceding raw fill.
	s.Unlock()
}

// SealFrames is SealFrame over a batch, taking each shard lock once per
// run of same-shard frames (consecutive PFNs share shards in runs of 4).
func (m *Machine) SealFrames(pfns []PFN) {
	for i := 0; i < len(pfns); {
		s := m.lock(pfns[i])
		s.Lock()
		j := i + 1
		for j < len(pfns) && m.lock(pfns[j]) == s {
			j++
		}
		s.Unlock()
		i = j
	}
}

// Ref increments a frame's reference count (shadow copies).
func (m *Machine) Ref(pfn PFN) {
	f := m.frame(pfn)
	s := m.lock(pfn)
	s.Lock()
	if f.refs == 0 {
		s.Unlock()
		panic(fmt.Sprintf("memsim: machine %d: bad PFN %d", m.id, pfn))
	}
	f.refs++
	s.Unlock()
}

// RefBatch increments the reference counts of a batch of frames in one
// shard-ordered pass: one lock acquisition per run of same-shard PFNs
// instead of a lock round-trip per page (the batched fault-install path).
func (m *Machine) RefBatch(pfns []PFN) {
	for i := 0; i < len(pfns); {
		s := m.lock(pfns[i])
		s.Lock()
		j := i
		for j < len(pfns) && m.lock(pfns[j]) == s {
			f := m.frame(pfns[j])
			if f.refs == 0 {
				s.Unlock()
				panic(fmt.Sprintf("memsim: machine %d: bad PFN %d", m.id, pfns[j]))
			}
			f.refs++
			j++
		}
		s.Unlock()
		i = j
	}
}

// Unref decrements a frame's reference count, freeing it at zero. The
// frame slot and its page buffer are retained for reuse; only the
// allocation bookkeeping changes.
func (m *Machine) Unref(pfn PFN) {
	f := m.frame(pfn)
	s := m.lock(pfn)
	s.Lock()
	f.refs--
	r := f.refs
	s.Unlock()
	if r < 0 {
		panic(fmt.Sprintf("memsim: machine %d: PFN %d refcount underflow", m.id, pfn))
	}
	if r == 0 {
		m.allocMu.Lock()
		m.free = append(m.free, pfn)
		m.live--
		m.allocMu.Unlock()
	}
}

// Refs reports a frame's current reference count.
func (m *Machine) Refs(pfn PFN) int {
	f := m.frame(pfn)
	s := m.lock(pfn)
	s.Lock()
	r := f.refs
	s.Unlock()
	if r == 0 {
		panic(fmt.Sprintf("memsim: machine %d: bad PFN %d", m.id, pfn))
	}
	return r
}

// Crash marks the machine failed: its frames become unreadable through the
// checked read path, so consumer page faults on rmapped pages surface as
// remote-fault errors. Crashing is permanent for the simulation's lifetime
// (a restarted machine would be a new Machine).
func (m *Machine) Crash() { m.crashed.Store(true) }

// Crashed reports whether the machine has failed.
func (m *Machine) Crashed() bool { return m.crashed.Load() }

// ReadFrameErr is ReadFrame for remote access paths: it fails with
// ErrMachineCrashed instead of serving bytes from a dead machine.
func (m *Machine) ReadFrameErr(pfn PFN, off int, buf []byte) error {
	if off < 0 || off+len(buf) > PageSize {
		panic(fmt.Sprintf("memsim: ReadFrame out of range off=%d len=%d", off, len(buf)))
	}
	if m.crashed.Load() {
		return fmt.Errorf("%w: machine %d", ErrMachineCrashed, m.id)
	}
	f := m.frame(pfn)
	s := m.lock(pfn)
	s.Lock()
	copy(buf, f.data[off:])
	s.Unlock()
	return nil
}

// ReadFrame copies bytes out of a frame. This is the one-sided RDMA read
// path: it touches only frame storage, never an address space, mirroring
// CPU/OS bypass on the remote machine.
func (m *Machine) ReadFrame(pfn PFN, off int, buf []byte) {
	if off < 0 || off+len(buf) > PageSize {
		panic(fmt.Sprintf("memsim: ReadFrame out of range off=%d len=%d", off, len(buf)))
	}
	f := m.frame(pfn)
	s := m.lock(pfn)
	s.Lock()
	copy(buf, f.data[off:])
	s.Unlock()
}

// WriteFrameErr is WriteFrame for remote access paths (replication
// pushes): it fails with ErrMachineCrashed instead of mutating a dead
// machine's frames.
func (m *Machine) WriteFrameErr(pfn PFN, off int, data []byte) error {
	if off < 0 || off+len(data) > PageSize {
		panic(fmt.Sprintf("memsim: WriteFrame out of range off=%d len=%d", off, len(data)))
	}
	if m.crashed.Load() {
		return fmt.Errorf("%w: machine %d", ErrMachineCrashed, m.id)
	}
	f := m.frame(pfn)
	s := m.lock(pfn)
	s.Lock()
	copy(f.data[off:], data)
	s.Unlock()
	return nil
}

// WriteFrame copies bytes into a frame (used by address spaces and the
// CoW-break path).
func (m *Machine) WriteFrame(pfn PFN, off int, data []byte) {
	if off < 0 || off+len(data) > PageSize {
		panic(fmt.Sprintf("memsim: WriteFrame out of range off=%d len=%d", off, len(data)))
	}
	f := m.frame(pfn)
	s := m.lock(pfn)
	s.Lock()
	copy(f.data[off:], data)
	s.Unlock()
}

// CopyFrame duplicates src into a fresh frame and returns it (CoW break).
// The copy runs under both frames' shard locks, acquired in shard order
// (the global order that keeps multi-shard critical sections deadlock-free).
func (m *Machine) CopyFrame(src PFN) PFN {
	dst := m.allocFrame(false)
	fs, fd := m.frame(src), m.frame(dst)
	ls, ld := m.lock(src), m.lock(dst)
	switch {
	case ls == ld:
		ls.Lock()
	case frameShard(src) < frameShard(dst):
		ls.Lock()
		ld.Lock()
	default:
		ld.Lock()
		ls.Lock()
	}
	copy(fd.data, fs.data)
	if ls != ld {
		ld.Unlock()
	}
	ls.Unlock()
	return dst
}

// LiveFrames reports currently allocated frames (memory accounting for
// Fig 16a).
func (m *Machine) LiveFrames() int {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	return m.live
}

// PeakFrames reports the high-water mark of allocated frames.
func (m *Machine) PeakFrames() int {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	return m.peak
}

// ResetPeak sets the high-water mark to the current live count, so an
// experiment can measure the peak of one phase.
func (m *Machine) ResetPeak() {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	m.peak = m.live
}

// LiveBytes is LiveFrames in bytes.
func (m *Machine) LiveBytes() int { return m.LiveFrames() * PageSize }

// PeakBytes is PeakFrames in bytes.
func (m *Machine) PeakBytes() int { return m.PeakFrames() * PageSize }
