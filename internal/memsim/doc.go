// Package memsim simulates the virtual-memory substrate RMMAP is built on:
// machines with pools of 4 KB physical frames, per-container address spaces
// with page tables and VMAs, copy-on-write, and pluggable page-fault
// handlers. It reproduces exactly the page-table state machine the paper's
// kernel module manipulates (§4.1), with real bytes behind every frame.
//
// Invariants the rest of the stack relies on:
//
//   - Every mapped virtual page resolves to exactly one physical frame on
//     exactly one machine; frames are reference-counted and a frame is
//     recycled only when its count reaches zero.
//   - Copy-on-write is observable: a write to a CoW page allocates a new
//     frame and copies the old bytes before the store lands, so shadow
//     copies taken by register_mem (see the kernel package) are immutable.
//   - Page faults are the only way an unmapped access proceeds — the VMA's
//     fault handler either installs a frame or the access fails. This is
//     the hook kernel.Kernel uses to fetch remote pages lazily.
//   - All sizes are page-granular; addresses are plain uint64 virtual
//     addresses, which is what lets objrt store raw pointers in object
//     fields and dereference them after an rmap.
package memsim
