package memsim

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"rmmap/internal/simtime"
)

func newAS(t *testing.T) (*Machine, *AddressSpace) {
	t.Helper()
	m := NewMachine(0)
	return m, NewAddressSpace(m, simtime.DefaultCostModel())
}

func TestFrameAllocFreeReuse(t *testing.T) {
	m := NewMachine(1)
	a := m.AllocFrame()
	b := m.AllocFrame()
	if a == b {
		t.Fatal("duplicate PFNs")
	}
	if m.LiveFrames() != 2 {
		t.Errorf("live = %d, want 2", m.LiveFrames())
	}
	m.Unref(a)
	if m.LiveFrames() != 1 {
		t.Errorf("live after free = %d", m.LiveFrames())
	}
	c := m.AllocFrame()
	if c != a {
		t.Errorf("free list not reused: got %d want %d", c, a)
	}
	if m.PeakFrames() != 2 {
		t.Errorf("peak = %d, want 2", m.PeakFrames())
	}
}

func TestFrameRefcount(t *testing.T) {
	m := NewMachine(1)
	p := m.AllocFrame()
	m.Ref(p)
	if m.Refs(p) != 2 {
		t.Errorf("refs = %d, want 2", m.Refs(p))
	}
	m.Unref(p)
	if m.LiveFrames() != 1 {
		t.Error("frame freed while referenced")
	}
	m.Unref(p)
	if m.LiveFrames() != 0 {
		t.Error("frame not freed at zero refs")
	}
}

func TestFrameRefcountUnderflowPanics(t *testing.T) {
	m := NewMachine(1)
	p := m.AllocFrame()
	m.Unref(p)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on underflow")
		}
	}()
	m.Unref(p)
}

func TestReadWriteRoundtrip(t *testing.T) {
	_, as := newAS(t)
	if err := as.MapAnon(0x10000, 0x20000, SegHeap, true); err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, remote memory map")
	if err := as.Write(0x10ff0, msg); err != nil { // crosses a page boundary
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := as.Read(0x10ff0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("roundtrip = %q, want %q", got, msg)
	}
}

func TestDemandZero(t *testing.T) {
	_, as := newAS(t)
	if err := as.MapAnon(0x10000, 0x11000, SegHeap, true); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = 0xff
	}
	if err := as.Read(0x10000, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
}

func TestSegFault(t *testing.T) {
	_, as := newAS(t)
	err := as.Read(0xdead000, make([]byte, 1))
	if !errors.Is(err, ErrSegFault) {
		t.Errorf("err = %v, want ErrSegFault", err)
	}
	err = as.Write(0xdead000, []byte{1})
	if !errors.Is(err, ErrSegFault) {
		t.Errorf("write err = %v, want ErrSegFault", err)
	}
}

func TestReadOnlyVMA(t *testing.T) {
	_, as := newAS(t)
	if err := as.MapAnon(0x10000, 0x11000, SegText, false); err != nil {
		t.Fatal(err)
	}
	if err := as.Read(0x10000, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	err := as.Write(0x10000, []byte{1})
	if !errors.Is(err, ErrReadOnly) {
		t.Errorf("err = %v, want ErrReadOnly", err)
	}
}

func TestVMAOverlapRejected(t *testing.T) {
	_, as := newAS(t)
	if err := as.MapAnon(0x10000, 0x20000, SegHeap, true); err != nil {
		t.Fatal(err)
	}
	err := as.MapAnon(0x18000, 0x28000, SegRmap, false)
	if !errors.Is(err, ErrVMAOverlap) {
		t.Errorf("err = %v, want ErrVMAOverlap", err)
	}
	// Adjacent is fine.
	if err := as.MapAnon(0x20000, 0x30000, SegRmap, false); err != nil {
		t.Errorf("adjacent VMA rejected: %v", err)
	}
}

func TestBadRange(t *testing.T) {
	_, as := newAS(t)
	if err := as.MapAnon(0x10001, 0x20000, SegHeap, true); !errors.Is(err, ErrBadRange) {
		t.Errorf("unaligned start: %v", err)
	}
	if err := as.MapAnon(0x20000, 0x10000, SegHeap, true); !errors.Is(err, ErrBadRange) {
		t.Errorf("inverted range: %v", err)
	}
}

func TestCoWIsolation(t *testing.T) {
	// The heart of RMMAP's coherency model: after MarkCoW, producer writes
	// must not be visible through the snapshot frames.
	m, as := newAS(t)
	if err := as.MapAnon(0x10000, 0x12000, SegHeap, true); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(0x10000, []byte("original")); err != nil {
		t.Fatal(err)
	}
	snap, err := as.MarkCoW(0x10000, 0x12000)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d pages, want 1 (only one touched)", len(snap))
	}
	sharedPFN := snap[PageOf(0x10000)]
	m.Ref(sharedPFN) // kernel shadow reference

	// Producer overwrites: must trigger CoW break.
	if err := as.Write(0x10000, []byte("MUTATED!")); err != nil {
		t.Fatal(err)
	}
	// The shadow frame still holds the original bytes.
	got := make([]byte, 8)
	m.ReadFrame(sharedPFN, 0, got)
	if string(got) != "original" {
		t.Errorf("shadow frame = %q, want %q", got, "original")
	}
	// The producer sees its own write.
	if err := as.Read(0x10000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "MUTATED!" {
		t.Errorf("producer view = %q, want MUTATED!", got)
	}
	m.Unref(sharedPFN)
}

func TestMarkCoWChargesPresentPagesOnly(t *testing.T) {
	_, as := newAS(t)
	meter := simtime.NewMeter()
	as.SetMeter(meter)
	if err := as.MapAnon(0x10000, 0x10000+16*PageSize, SegHeap, true); err != nil {
		t.Fatal(err)
	}
	// Touch 5 of 16 pages; marking charges only those (untouched pages
	// have no PTE to mark).
	for i := 0; i < 5; i++ {
		if err := as.Write(0x10000+uint64(i)*PageSize, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	meter.Reset()
	if _, err := as.MarkCoW(0x10000, 0x10000+16*PageSize); err != nil {
		t.Fatal(err)
	}
	want := simtime.Scale(simtime.DefaultCostModel().CoWMarkPerPage, 5)
	if got := meter.Get(simtime.CatRegister); got != want {
		t.Errorf("register charge = %v, want %v", got, want)
	}
}

func TestUnmapReleasesFrames(t *testing.T) {
	m, as := newAS(t)
	if err := as.MapAnon(0x10000, 0x14000, SegHeap, true); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0x10000); a < 0x14000; a += PageSize {
		if err := as.Write(a, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if m.LiveFrames() != 4 {
		t.Fatalf("live = %d, want 4", m.LiveFrames())
	}
	if err := as.Unmap(0x10000, 0x14000); err != nil {
		t.Fatal(err)
	}
	if m.LiveFrames() != 0 {
		t.Errorf("live after unmap = %d, want 0", m.LiveFrames())
	}
	if err := as.Read(0x10000, make([]byte, 1)); !errors.Is(err, ErrSegFault) {
		t.Errorf("read after unmap: %v, want segfault", err)
	}
}

func TestReleaseKeepsShadowFrames(t *testing.T) {
	m, as := newAS(t)
	if err := as.MapAnon(0x10000, 0x11000, SegHeap, true); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(0x10000, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	snap, _ := as.MarkCoW(0x10000, 0x11000)
	pfn := snap[PageOf(0x10000)]
	m.Ref(pfn) // kernel shadow
	as.Release()
	if m.LiveFrames() != 1 {
		t.Fatalf("live = %d, want 1 (shadow survives container exit)", m.LiveFrames())
	}
	got := make([]byte, 8)
	m.ReadFrame(pfn, 0, got)
	if string(got) != "survivor" {
		t.Errorf("shadow = %q", got)
	}
	m.Unref(pfn)
}

func TestFindVMA(t *testing.T) {
	_, as := newAS(t)
	_ = as.MapAnon(0x10000, 0x20000, SegHeap, true)
	_ = as.MapAnon(0x40000, 0x50000, SegStack, true)
	if v := as.FindVMA(0x15000); v == nil || v.Kind != SegHeap {
		t.Errorf("FindVMA(0x15000) = %+v", v)
	}
	if v := as.FindVMA(0x30000); v != nil {
		t.Errorf("FindVMA(hole) = %+v, want nil", v)
	}
	if v := as.FindVMA(0x4ffff); v == nil || v.Kind != SegStack {
		t.Errorf("FindVMA(stack end) = %+v", v)
	}
	if v := as.FindVMA(0x50000); v != nil {
		t.Errorf("FindVMA(end) should be exclusive, got %+v", v)
	}
}

func TestUint64Accessors(t *testing.T) {
	_, as := newAS(t)
	_ = as.MapAnon(0x10000, 0x11000, SegHeap, true)
	if err := as.WriteUint64(0x10008, 0xdeadbeefcafe1234); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadUint64(0x10008)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafe1234 {
		t.Errorf("got %#x", v)
	}
}

func TestCustomFaultHandler(t *testing.T) {
	m, as := newAS(t)
	calls := 0
	err := as.AddVMA(&VMA{
		Start: 0x70000, End: 0x71000, Kind: SegRmap, Writable: false,
		Fault: func(as *AddressSpace, vaddr uint64, ft FaultType) error {
			calls++
			pfn := m.AllocFrame()
			m.WriteFrame(pfn, 0, []byte("remote page content"))
			as.InstallPTE(PageOf(vaddr), PTE{PFN: pfn, Flags: FlagPresent})
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 19)
	if err := as.Read(0x70000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "remote page content" {
		t.Errorf("got %q", buf)
	}
	if err := as.Read(0x70000, buf); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("handler called %d times, want 1 (page cached)", calls)
	}
	if as.Faults() != 1 {
		t.Errorf("fault count = %d", as.Faults())
	}
}

func TestPresentPages(t *testing.T) {
	_, as := newAS(t)
	_ = as.MapAnon(0x10000, 0x10000+8*PageSize, SegHeap, true)
	_ = as.Write(0x10000, []byte{1})
	_ = as.Write(0x10000+3*PageSize, []byte{1})
	if got := as.PresentPages(0x10000, 0x10000+8*PageSize); got != 2 {
		t.Errorf("PresentPages = %d, want 2", got)
	}
}

func TestPageOfBase(t *testing.T) {
	if PageOf(0x1fff) != 1 {
		t.Errorf("PageOf(0x1fff) = %d", PageOf(0x1fff))
	}
	if VPN(3).Base() != 3*PageSize {
		t.Errorf("Base = %#x", VPN(3).Base())
	}
}

// Property: write-then-read returns the written bytes for arbitrary
// (offset, payload) within a mapped region, including page-straddling ones.
func TestReadWriteProperty(t *testing.T) {
	_, as := newAS(t)
	const base, size = uint64(0x100000), uint64(64 * PageSize)
	if err := as.MapAnon(base, base+size, SegHeap, true); err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := base + uint64(off)%(size-uint64(len(data)))
		if as.Write(addr, data) != nil {
			return false
		}
		got := make([]byte, len(data))
		if as.Read(addr, got) != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: machine live-frame accounting never goes negative and peak is
// monotone ≥ live across arbitrary alloc/free sequences.
func TestFrameAccountingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		m := NewMachine(9)
		var held []PFN
		for _, alloc := range ops {
			if alloc || len(held) == 0 {
				held = append(held, m.AllocFrame())
			} else {
				m.Unref(held[len(held)-1])
				held = held[:len(held)-1]
			}
			if m.LiveFrames() != len(held) || m.PeakFrames() < m.LiveFrames() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
