package memsim

import (
	"errors"
	"fmt"
	"sort"

	"rmmap/internal/simtime"
)

// PTEFlags describe a page-table entry's state.
type PTEFlags uint8

const (
	// FlagPresent means the page is mapped to a local frame.
	FlagPresent PTEFlags = 1 << iota
	// FlagWritable allows stores without a fault.
	FlagWritable
	// FlagCoW marks a page copy-on-write: the frame is shared (it has a
	// shadow reference held by the RMMAP kernel) and a store must break
	// the sharing by copying.
	FlagCoW
)

// PTE is a page-table entry.
type PTE struct {
	PFN   PFN
	Flags PTEFlags
}

// Present reports whether the entry maps a frame.
func (p PTE) Present() bool { return p.Flags&FlagPresent != 0 }

// FaultType distinguishes read from write faults.
type FaultType int

const (
	// FaultRead is a load to an unmapped page.
	FaultRead FaultType = iota
	// FaultWrite is a store to an unmapped or write-protected page.
	FaultWrite
)

// FaultHandler resolves a fault on one page of a VMA by installing a PTE
// (via InstallPTE) or returning an error. vaddr is the faulting address.
type FaultHandler func(as *AddressSpace, vaddr uint64, ft FaultType) error

// VMAKind labels a region's role; SegHeap/SegStack are the segments
// set_segment positions (§4.1 Table 1).
type VMAKind string

// Segment kinds.
const (
	SegText  VMAKind = "text"
	SegData  VMAKind = "data"
	SegHeap  VMAKind = "heap"
	SegStack VMAKind = "stack"
	SegRmap  VMAKind = "rmap"
)

// VMA is a virtual memory area: [Start, End) with a fault handler.
type VMA struct {
	Start, End uint64
	Kind       VMAKind
	Writable   bool
	Fault      FaultHandler
}

func (v *VMA) contains(addr uint64) bool { return addr >= v.Start && addr < v.End }

// Len returns the region size in bytes.
func (v *VMA) Len() uint64 { return v.End - v.Start }

// Errors returned by address-space operations.
var (
	ErrSegFault   = errors.New("memsim: segmentation fault (no VMA)")
	ErrVMAOverlap = errors.New("memsim: VMA overlaps existing mapping")
	ErrReadOnly   = errors.New("memsim: write to read-only mapping")
	ErrBadRange   = errors.New("memsim: bad address range")
)

// AddressSpace is one container's virtual address space on a machine. It is
// not safe for concurrent use; a container runs one function at a time.
type AddressSpace struct {
	machine *Machine
	pt      map[VPN]PTE
	vmas    []*VMA // sorted by Start

	meter *simtime.Meter
	cm    *simtime.CostModel

	faults int // cumulative fault count, for tests and factor analysis

	// One-entry TLB: object reads are byte-at-a-time map lookups
	// otherwise. Invalidated on any page-table mutation.
	tlbVPN   VPN
	tlbPTE   PTE
	tlbValid bool
}

func (as *AddressSpace) tlbLookup(vpn VPN) (PTE, bool) {
	if as.tlbValid && as.tlbVPN == vpn {
		return as.tlbPTE, true
	}
	pte, ok := as.pt[vpn]
	if ok && pte.Present() {
		as.tlbVPN, as.tlbPTE, as.tlbValid = vpn, pte, true
	}
	return pte, ok
}

func (as *AddressSpace) tlbFlush() { as.tlbValid = false }

// NewAddressSpace returns an empty address space on machine m, charging
// costs from cm (which must be non-nil).
func NewAddressSpace(m *Machine, cm *simtime.CostModel) *AddressSpace {
	if cm == nil {
		panic("memsim: nil cost model")
	}
	return &AddressSpace{machine: m, pt: make(map[VPN]PTE), cm: cm}
}

// Machine returns the hosting machine.
func (as *AddressSpace) Machine() *Machine { return as.machine }

// CostModel returns the cost model in use.
func (as *AddressSpace) CostModel() *simtime.CostModel { return as.cm }

// SetMeter directs subsequent fault/copy charges at m (the currently
// executing invocation's meter). A nil meter disables charging.
func (as *AddressSpace) SetMeter(m *simtime.Meter) { as.meter = m }

// Meter returns the current accounting target.
func (as *AddressSpace) Meter() *simtime.Meter { return as.meter }

// Faults returns the cumulative page-fault count.
func (as *AddressSpace) Faults() int { return as.faults }

func checkRange(start, end uint64) error {
	if end <= start || start%PageSize != 0 || end%PageSize != 0 {
		return fmt.Errorf("%w: [%#x,%#x)", ErrBadRange, start, end)
	}
	return nil
}

// AddVMA inserts a mapping, rejecting overlap with any existing VMA — the
// conflict check that makes rmap fail on address collisions (Table 1).
func (as *AddressSpace) AddVMA(v *VMA) error {
	if err := checkRange(v.Start, v.End); err != nil {
		return err
	}
	for _, o := range as.vmas {
		if v.Start < o.End && o.Start < v.End {
			return fmt.Errorf("%w: new [%#x,%#x) vs %s [%#x,%#x)",
				ErrVMAOverlap, v.Start, v.End, o.Kind, o.Start, o.End)
		}
	}
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	return nil
}

// MapAnon creates a demand-zero anonymous mapping, the normal backing for
// heap/stack/data segments.
func (as *AddressSpace) MapAnon(start, end uint64, kind VMAKind, writable bool) error {
	return as.AddVMA(&VMA{
		Start: start, End: end, Kind: kind, Writable: writable,
		Fault: anonFault,
	})
}

func anonFault(as *AddressSpace, vaddr uint64, ft FaultType) error {
	pfn := as.machine.AllocFrame()
	flags := FlagPresent
	if v := as.FindVMA(vaddr); v != nil && v.Writable {
		flags |= FlagWritable
	}
	as.InstallPTE(PageOf(vaddr), PTE{PFN: pfn, Flags: flags})
	return nil
}

// FindVMA returns the VMA containing addr, or nil.
func (as *AddressSpace) FindVMA(addr uint64) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > addr })
	if i < len(as.vmas) && as.vmas[i].contains(addr) {
		return as.vmas[i]
	}
	return nil
}

// VMAs returns the current mappings (sorted, not to be mutated).
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// InstallPTE sets the page-table entry for vpn. Fault handlers use it to
// resolve faults; the kernel uses it during CoW marking and rmap.
func (as *AddressSpace) InstallPTE(vpn VPN, pte PTE) {
	if old, ok := as.pt[vpn]; ok && old.Present() && old.PFN != pte.PFN {
		as.machine.Unref(old.PFN)
	}
	as.pt[vpn] = pte
	as.tlbFlush()
}

// InstallShared maps vpn onto an existing frame without copying: it takes
// a reference on pfn and installs a write-protected CoW entry, so the frame
// is shared zero-copy until the first write breaks CoW. The remote page
// cache uses it to hand one fetched frame to many co-located consumers.
func (as *AddressSpace) InstallShared(vpn VPN, pfn PFN) {
	as.machine.Ref(pfn)
	as.InstallPTE(vpn, PTE{PFN: pfn, Flags: FlagPresent | FlagCoW})
}

// InstallSharedBatch is InstallShared over a whole readahead window: the
// reference counts are taken in one shard-ordered batch (Machine.RefBatch)
// and the PTEs installed in window order — one critical section per run of
// same-shard frames instead of a lock round-trip per page.
func (as *AddressSpace) InstallSharedBatch(vpns []VPN, pfns []PFN) {
	if len(vpns) != len(pfns) {
		panic("memsim: InstallSharedBatch length mismatch")
	}
	as.machine.RefBatch(pfns)
	for i, vpn := range vpns {
		as.InstallPTE(vpn, PTE{PFN: pfns[i], Flags: FlagPresent | FlagCoW})
	}
}

// Lookup returns the PTE for vpn.
func (as *AddressSpace) Lookup(vpn VPN) (PTE, bool) {
	pte, ok := as.pt[vpn]
	return pte, ok
}

// Unmap removes the VMA exactly covering [start, end), releasing its
// present frames.
func (as *AddressSpace) Unmap(start, end uint64) error {
	for i, v := range as.vmas {
		if v.Start == start && v.End == end {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			as.tlbFlush()
			drop := func(vpn VPN, pte PTE) {
				if pte.Present() {
					as.machine.Unref(pte.PFN)
				}
				delete(as.pt, vpn)
			}
			if int(uint64(end-start)>>PageShift) > len(as.pt) {
				var victims []VPN
				for vpn := range as.pt {
					if vpn.Base() >= start && vpn.Base() < end {
						victims = append(victims, vpn)
					}
				}
				for _, vpn := range victims {
					drop(vpn, as.pt[vpn])
				}
			} else {
				for vpn := PageOf(start); vpn.Base() < end; vpn++ {
					if pte, ok := as.pt[vpn]; ok {
						drop(vpn, pte)
					}
				}
			}
			return nil
		}
	}
	return fmt.Errorf("%w: no VMA [%#x,%#x)", ErrBadRange, start, end)
}

// Release tears down the whole address space, dropping every frame
// reference. Registered (shadowed) frames survive because the kernel holds
// its own references.
func (as *AddressSpace) Release() {
	as.tlbFlush()
	for vpn, pte := range as.pt {
		if pte.Present() {
			as.machine.Unref(pte.PFN)
		}
		delete(as.pt, vpn)
	}
	as.vmas = nil
}

func (as *AddressSpace) handleFault(vaddr uint64, ft FaultType) error {
	v := as.FindVMA(vaddr)
	if v == nil {
		return fmt.Errorf("%w: %#x", ErrSegFault, vaddr)
	}
	if ft == FaultWrite && !v.Writable {
		return fmt.Errorf("%w: %#x in %s VMA", ErrReadOnly, vaddr, v.Kind)
	}
	if v.Fault == nil {
		return fmt.Errorf("%w: %#x (no fault handler)", ErrSegFault, vaddr)
	}
	as.faults++
	return v.Fault(as, vaddr, ft)
}

// Read copies len(buf) bytes from virtual address vaddr, faulting pages in
// as needed. Remote faults charge the current meter via their handler.
func (as *AddressSpace) Read(vaddr uint64, buf []byte) error {
	for len(buf) > 0 {
		vpn := PageOf(vaddr)
		pte, ok := as.tlbLookup(vpn)
		if !ok || !pte.Present() {
			if err := as.handleFault(vaddr, FaultRead); err != nil {
				return err
			}
			pte = as.pt[vpn]
			if !pte.Present() {
				return fmt.Errorf("%w: fault handler left %#x unmapped", ErrSegFault, vaddr)
			}
		}
		off := int(vaddr & (PageSize - 1))
		n := PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		as.machine.ReadFrame(pte.PFN, off, buf[:n])
		buf = buf[n:]
		vaddr += uint64(n)
	}
	return nil
}

// Write copies data to virtual address vaddr, faulting and breaking CoW as
// needed. A store to a CoW page copies the frame (charging memcpy cost) and
// drops the shared reference — isolating the producer's later writes from
// consumers, exactly the model of §4.1 "Coherency".
func (as *AddressSpace) Write(vaddr uint64, data []byte) error {
	for len(data) > 0 {
		vpn := PageOf(vaddr)
		pte, ok := as.tlbLookup(vpn)
		switch {
		case !ok || !pte.Present():
			if err := as.handleFault(vaddr, FaultWrite); err != nil {
				return err
			}
			continue
		case pte.Flags&FlagCoW != 0:
			as.breakCoW(vpn, pte)
			continue
		case pte.Flags&FlagWritable == 0:
			return fmt.Errorf("%w: %#x", ErrReadOnly, vaddr)
		}
		off := int(vaddr & (PageSize - 1))
		n := PageSize - off
		if n > len(data) {
			n = len(data)
		}
		as.machine.WriteFrame(pte.PFN, off, data[:n])
		data = data[n:]
		vaddr += uint64(n)
	}
	return nil
}

func (as *AddressSpace) breakCoW(vpn VPN, pte PTE) {
	newPFN := as.machine.CopyFrame(pte.PFN)
	as.machine.Unref(pte.PFN)
	as.pt[vpn] = PTE{PFN: newPFN, Flags: FlagPresent | FlagWritable}
	as.tlbFlush()
	if as.meter != nil {
		as.meter.Charge(simtime.CatCompute, simtime.Bytes(PageSize, as.cm.MemcpyPerByte))
	}
}

// MarkCoW write-protects every present page in [start, end) and returns the
// (VPN → PFN) snapshot of those pages. register_mem uses it: the snapshot
// becomes both the shadow-copy set and the page table shipped to consumers.
// The caller is charged CoWMarkPerPage per present page.
func (as *AddressSpace) MarkCoW(start, end uint64) (map[VPN]PFN, error) {
	if err := checkRange(start, end); err != nil {
		return nil, err
	}
	as.tlbFlush()
	snap := make(map[VPN]PFN)
	mark := func(vpn VPN, pte PTE) {
		pte.Flags = (pte.Flags | FlagCoW) &^ FlagWritable
		as.pt[vpn] = pte
		snap[vpn] = pte.PFN
	}
	// Iterate whichever is smaller: the VPN range or the page table
	// (sparse tables make huge registrations cheap, like real PTE walks
	// that skip absent directories).
	if int(uint64(end-start)>>PageShift) > len(as.pt) {
		for vpn, pte := range as.pt {
			if pte.Present() && vpn.Base() >= start && vpn.Base() < end {
				mark(vpn, pte)
			}
		}
	} else {
		for vpn := PageOf(start); vpn.Base() < end; vpn++ {
			if pte, ok := as.pt[vpn]; ok && pte.Present() {
				mark(vpn, pte)
			}
		}
	}
	if as.meter != nil {
		as.meter.Charge(simtime.CatRegister, simtime.Scale(as.cm.CoWMarkPerPage, len(snap)))
	}
	return snap, nil
}

// PresentPages returns how many pages in [start,end) are mapped.
func (as *AddressSpace) PresentPages(start, end uint64) int {
	n := 0
	for vpn := PageOf(start); vpn.Base() < end; vpn++ {
		if pte, ok := as.pt[vpn]; ok && pte.Present() {
			n++
		}
	}
	return n
}

// --- small typed accessors used by the object runtime ---

// ReadUint64 loads a little-endian uint64.
func (as *AddressSpace) ReadUint64(vaddr uint64) (uint64, error) {
	var b [8]byte
	if err := as.Read(vaddr, b[:]); err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// WriteUint64 stores a little-endian uint64.
func (as *AddressSpace) WriteUint64(vaddr uint64, v uint64) error {
	b := [8]byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
	}
	return as.Write(vaddr, b[:])
}
