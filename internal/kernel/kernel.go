package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rmmap/internal/memsim"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

// FuncID identifies the registering function instance.
type FuncID uint64

// Key is the registration secret used for authentication.
type Key uint64

// AuthEndpoint is the RPC endpoint name kernels serve for rmap
// authentication and page-table fetch.
const AuthEndpoint = "rmmap.auth"

// DeregEndpoint is the RPC endpoint the serverless framework calls to
// reclaim registered memory on a remote machine (§4.2).
const DeregEndpoint = "rmmap.dereg"

// PageEndpoint serves single-page reads over RPC; it exists only for the
// Fig 15 "no RDMA" ablation, which pays messaging-style costs per page.
const PageEndpoint = "rmmap.page"

// LeaseEndpoint serves failure-detector probes: a successful roundtrip
// renews the caller's lease on this machine and returns its current
// registration generation.
const LeaseEndpoint = "rmmap.lease"

// Replica endpoints (see replica.go): prepare allocates backup frames for
// a registration, commit advances the replication watermark, drop frees a
// replica, and auth serves the consumer-side failover page table.
const (
	ReplPrepareEndpoint = "rmmap.replprep"
	ReplCommitEndpoint  = "rmmap.replcommit"
	ReplDropEndpoint    = "rmmap.repldrop"
	ReplicaEndpoint     = "rmmap.replica"
)

// Errors.
var (
	ErrAuth          = errors.New("kernel: authentication failed")
	ErrDenied        = errors.New("kernel: consumer not permitted by registration ACL")
	ErrNotRegistered = errors.New("kernel: memory not registered")
	ErrRangeOutside  = errors.New("kernel: requested range outside registration")
	// ErrStaleGeneration fences split-brain reads: a consumer revalidating
	// an expired lease found the producer serving a different registration
	// generation, so its mapping (and any cached frames under the old
	// generation) must not be read again.
	ErrStaleGeneration = errors.New("kernel: registration generation changed under an expired lease")
	// ErrReplicaIncomplete refuses failover to a backup whose replication
	// watermark never reached the registration's full page count.
	ErrReplicaIncomplete = errors.New("kernel: replica watermark incomplete")
)

// VMMeta describes a successful registration; the producer ships it (via
// the coordinator) to consumers, which pass it to Rmap.
type VMMeta struct {
	Machine    memsim.MachineID
	ID         FuncID
	Key        Key
	Start, End uint64
	// Pages is the number of present (shadowed) pages registered.
	Pages int
	// Backups lists the machines this registration is asynchronously
	// replicated to (empty without replication); consumers fail over to
	// them when the producer machine dies.
	Backups []memsim.MachineID
}

type regKey struct {
	id  FuncID
	key Key
}

type regEntry struct {
	start, end   uint64
	snapshot     map[memsim.VPN]memsim.PFN
	registeredAt simtime.Time
	// gen is the machine's registration generation at register time; it
	// keys consumer-side page-cache entries so frames of deregistered
	// (and possibly reused) producer PFNs can never serve stale hits.
	gen uint64
	// respCache holds the encoded full-range auth response; many
	// consumers of one registration (e.g. a 200-wide fan-out) fetch the
	// same page table.
	respCache []byte
	// allowed is the connection-based permission list (§4.1, following
	// MITOSIS): non-nil restricts rmap to the listed consumer IDs.
	allowed map[FuncID]struct{}
	// backups snapshots the kernel's replication targets at register time;
	// it travels in the auth response so consumers can fail over.
	backups []memsim.MachineID
}

// Kernel is one machine's RMMAP kernel module.
type Kernel struct {
	mu        sync.Mutex
	machine   *memsim.Machine
	transport rdma.Transport
	cm        *simtime.CostModel
	regs      map[regKey]*regEntry
	// memGen is the registration generation counter: it advances on every
	// deregister_mem (and re-registration), so consumer page caches can
	// tell a live registration's frames from a reclaimed one's.
	memGen uint64
	// pcache is the machine-level remote page cache; nil disables caching
	// (the kernel-level default — platform clusters enable it).
	pcache *PageCache
	// raMax caps the fault-coalescing readahead window in pages; 0 or 1
	// disables readahead.
	raMax int
	// raPages counts pages fetched by readahead beyond demand pages
	// (atomic: bumped on every batch fault, read by stats snapshots).
	raPages atomic.Int64
	// ctrlEpochs maps coordinator shard index -> highest epoch this kernel
	// has adopted for that shard; control-plane commands from lower epochs
	// are fenced per shard (ctrlepoch.go). Lazily allocated under mu; the
	// single-shard control plane only ever uses shard 0.
	ctrlEpochs map[int]uint64
	// Clock supplies the current virtual time for lease-based
	// reclamation; nil means time 0 (leases disabled).
	Clock func() simtime.Time
	// OnDeregister, when set, is called after a successful deregister_mem
	// with this machine's ID and the first still-valid generation; the
	// platform broadcasts it to every machine's page cache
	// (InvalidateBelow) so reclaimed producer frames drop out everywhere.
	OnDeregister func(producer memsim.MachineID, below uint64)

	// --- Leases (failure detector state; see lease.go) ---

	// leaseTTL > 0 enables the lease table: peers not successfully probed
	// within the TTL become suspect and reads must revalidate.
	leaseTTL      simtime.Duration
	leases        map[memsim.MachineID]*leaseState
	hbMeter       *simtime.Meter
	leaseExpiries int64
	// OnPeerDead, when set, fires once when a probe proves a peer machine
	// crashed (terminal, unlike an expiry).
	OnPeerDead func(peer memsim.MachineID)
	// OnLeaseExpired, when set, fires once per peer when its lease ages
	// out without crash evidence; the platform broadcasts page-cache
	// invalidation exactly like OnDeregister.
	OnLeaseExpired func(peer memsim.MachineID)

	// --- Replication (producer + backup roles; see replica.go) ---

	// replBackups lists this kernel's backup machines; non-empty enables
	// async replication of every registration.
	replBackups []memsim.MachineID
	// replSched schedules deferred work in virtual time (the platform
	// wires Sim.After); replication is inert without it.
	replSched func(d simtime.Duration, fn func())
	replMeter *simtime.Meter
	// replicatedBytes counts page bytes this kernel pushed to backups.
	replicatedBytes int64
	// replicas holds registrations this machine backs up for peers.
	replicas map[replicaKey]*replicaEntry
	// failovers counts consumer-side mapping re-points to a replica.
	failovers atomic.Int64
}

// New returns a kernel for machine m whose remote operations go through t.
func New(m *memsim.Machine, t rdma.Transport, cm *simtime.CostModel) *Kernel {
	return &Kernel{machine: m, transport: t, cm: cm, regs: make(map[regKey]*regEntry)}
}

// Machine returns the hosting machine.
func (k *Kernel) Machine() *memsim.Machine { return k.machine }

// EnablePageCache turns on the machine-level remote page cache with the
// given byte budget; budget ≤ 0 disables it (dropping any cached frames).
func (k *Kernel) EnablePageCache(budget int64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if budget <= 0 {
		if k.pcache != nil {
			k.pcache.invalidate(func(cacheKey) bool { return true })
		}
		k.pcache = nil
		return
	}
	k.pcache = NewPageCache(k.machine, budget)
}

// PageCache returns the machine's remote page cache (nil when disabled).
func (k *Kernel) PageCache() *PageCache { return k.pcache }

// SetReadahead caps the fault-coalescing readahead window in pages;
// 0 or 1 disables readahead.
func (k *Kernel) SetReadahead(maxPages int) {
	if maxPages < 0 {
		maxPages = 0
	}
	k.raMax = maxPages
}

// ReadaheadPages reports pages fetched by readahead beyond demand faults.
func (k *Kernel) ReadaheadPages() int64 { return k.raPages.Load() }

func (k *Kernel) addReadaheadPages(n int) { k.raPages.Add(int64(n)) }

// CacheStats snapshots this machine's cache and readahead counters.
func (k *Kernel) CacheStats() CacheStats {
	var s CacheStats
	if k.pcache != nil {
		s = k.pcache.Stats()
	}
	s.ReadaheadPages = k.ReadaheadPages()
	return s
}

func (k *Kernel) now() simtime.Time {
	if k.Clock == nil {
		return 0
	}
	return k.Clock()
}

// RegisterMem implements register_mem(id, key, vm_start, vm_end): it marks
// the range copy-on-write in the caller's page table, records shadow
// references on every present frame (so the memory survives the caller's
// exit), and stores auth info for later rmap validation.
func (k *Kernel) RegisterMem(as *memsim.AddressSpace, id FuncID, key Key, start, end uint64) (VMMeta, error) {
	if as.Machine() != k.machine {
		return VMMeta{}, fmt.Errorf("kernel: address space not on machine %d", k.machine.ID())
	}
	snap, err := as.MarkCoW(start, end)
	if err != nil {
		return VMMeta{}, err
	}
	for _, pfn := range snap {
		k.machine.Ref(pfn)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	rk := regKey{id, key}
	if old, ok := k.regs[rk]; ok {
		// Re-registration replaces the previous shadow set; bump the
		// generation so cached pages of the old set go stale.
		for _, pfn := range old.snapshot {
			k.machine.Unref(pfn)
		}
		k.memGen++
	}
	e := &regEntry{
		start: start, end: end, snapshot: snap, registeredAt: k.now(),
		gen: k.memGen, backups: append([]memsim.MachineID(nil), k.replBackups...),
	}
	k.regs[rk] = e
	k.scheduleReplicationLocked(rk, e)
	return VMMeta{
		Machine: k.machine.ID(), ID: id, Key: key,
		Start: start, End: end, Pages: len(snap),
		Backups: append([]memsim.MachineID(nil), e.backups...),
	}, nil
}

// SetACL restricts a registration to the listed consumer IDs (nil or
// empty allows any key-holder) — the connection-based permission control
// that isolates access from unrelated functions.
func (k *Kernel) SetACL(id FuncID, key Key, allowed []FuncID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.regs[regKey{id, key}]
	if !ok {
		return fmt.Errorf("%w: id=%d", ErrNotRegistered, id)
	}
	if len(allowed) == 0 {
		e.allowed = nil
		return nil
	}
	e.allowed = make(map[FuncID]struct{}, len(allowed))
	for _, c := range allowed {
		e.allowed[c] = struct{}{}
	}
	return nil
}

// DeregisterMem implements deregister_mem(job_id, key): it drops the shadow
// references, allowing the frames to be freed once no consumer mapping
// still holds them.
func (k *Kernel) DeregisterMem(id FuncID, key Key) error {
	k.mu.Lock()
	e, ok := k.regs[regKey{id, key}]
	if ok {
		delete(k.regs, regKey{id, key})
		// The freed PFNs may be reused by any later registration, so the
		// generation advances past this entry's: consumer caches keyed on
		// (machine, pfn, e.gen) can never serve the reused frames.
		if k.memGen <= e.gen {
			k.memGen = e.gen + 1
		}
	}
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: id=%d", ErrNotRegistered, id)
	}
	for _, pfn := range e.snapshot {
		k.machine.Unref(pfn)
	}
	if k.OnDeregister != nil {
		k.OnDeregister(k.machine.ID(), e.gen+1)
	}
	k.scheduleReplicaDrop(id, key, e.backups)
	return nil
}

// Registrations reports how many registrations are live.
func (k *Kernel) Registrations() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.regs)
}

// ScanExpired reclaims registrations older than maxAge — the
// coordinator-failure fallback of §4.2 ("maximum lifetime plus a grace
// period"). It returns the number reclaimed.
func (k *Kernel) ScanExpired(maxAge simtime.Duration) int {
	now := k.now()
	k.mu.Lock()
	var expired []regKey
	for rk, e := range k.regs {
		if now.Sub(e.registeredAt) > maxAge {
			expired = append(expired, rk)
		}
	}
	k.mu.Unlock()
	for _, rk := range expired {
		// DeregisterMem re-checks existence under the lock.
		_ = k.DeregisterMem(rk.id, rk.key)
	}
	return len(expired)
}

// SetSegment implements set_segment: it positions a heap/stack segment of
// the container at a fixed range so that the address-space plan (§4.2) is
// enforced even for OS-assigned segments.
func (k *Kernel) SetSegment(as *memsim.AddressSpace, kind memsim.VMAKind, start, end uint64) error {
	return as.MapAnon(start, end, kind, true)
}

// --- RPC service side ---

// ServeRPC registers this kernel's endpoints on a SimFabric.
func (k *Kernel) ServeRPC(f *rdma.SimFabric) {
	f.HandleFunc(k.machine.ID(), AuthEndpoint, k.handleAuth)
	f.HandleFunc(k.machine.ID(), DeregEndpoint, k.handleDereg)
	f.HandleFunc(k.machine.ID(), PageEndpoint, k.handlePage)
	f.HandleFunc(k.machine.ID(), LeaseEndpoint, k.handleLease)
	f.HandleFunc(k.machine.ID(), ReplPrepareEndpoint, k.handleReplPrepare)
	f.HandleFunc(k.machine.ID(), ReplCommitEndpoint, k.handleReplCommit)
	f.HandleFunc(k.machine.ID(), ReplDropEndpoint, k.handleReplDrop)
	f.HandleFunc(k.machine.ID(), ReplicaEndpoint, k.handleReplicaAuth)
}

// ServeTCP registers this kernel's endpoints on a TCP server.
func (k *Kernel) ServeTCP(s *rdma.TCPServer) {
	s.HandleFunc(AuthEndpoint, k.handleAuth)
	s.HandleFunc(DeregEndpoint, k.handleDereg)
	s.HandleFunc(PageEndpoint, k.handlePage)
	s.HandleFunc(LeaseEndpoint, k.handleLease)
	s.HandleFunc(ReplPrepareEndpoint, k.handleReplPrepare)
	s.HandleFunc(ReplCommitEndpoint, k.handleReplCommit)
	s.HandleFunc(ReplDropEndpoint, k.handleReplDrop)
	s.HandleFunc(ReplicaEndpoint, k.handleReplicaAuth)
}

// auth request: id u64 | key u64 | start u64 | end u64 | consumer u64
// auth response: count u32 | gen u64 | nback u16 | nback × (mac u64) |
// count × (vpn u64, pfn u64)
func (k *Kernel) handleAuth(m *simtime.Meter, req []byte) ([]byte, error) {
	if len(req) != 40 {
		return nil, fmt.Errorf("kernel: bad auth request")
	}
	id := FuncID(binary.LittleEndian.Uint64(req))
	key := Key(binary.LittleEndian.Uint64(req[8:]))
	start := binary.LittleEndian.Uint64(req[16:])
	end := binary.LittleEndian.Uint64(req[24:])
	consumer := FuncID(binary.LittleEndian.Uint64(req[32:]))

	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.regs[regKey{id, key}]
	if !ok {
		return nil, fmt.Errorf("%w: id=%d", ErrAuth, id)
	}
	if e.allowed != nil {
		if _, ok := e.allowed[consumer]; !ok {
			return nil, fmt.Errorf("%w: consumer %d", ErrDenied, consumer)
		}
	}
	if start < e.start || end > e.end {
		return nil, fmt.Errorf("%w: [%#x,%#x) not within [%#x,%#x)",
			ErrRangeOutside, start, end, e.start, e.end)
	}
	full := start == e.start && end == e.end
	if full && e.respCache != nil {
		return e.respCache, nil
	}
	hdr := 14 + 8*len(e.backups)
	resp := make([]byte, hdr, hdr+16*len(e.snapshot))
	binary.LittleEndian.PutUint16(resp[12:], uint16(len(e.backups)))
	for i, b := range e.backups {
		binary.LittleEndian.PutUint64(resp[14+8*i:], uint64(b))
	}
	count := 0
	for vpn, pfn := range e.snapshot {
		if vpn.Base() >= start && vpn.Base() < end {
			var rec [16]byte
			binary.LittleEndian.PutUint64(rec[:], uint64(vpn))
			binary.LittleEndian.PutUint64(rec[8:], uint64(pfn))
			resp = append(resp, rec[:]...)
			count++
		}
	}
	binary.LittleEndian.PutUint32(resp, uint32(count))
	binary.LittleEndian.PutUint64(resp[4:], e.gen)
	if full {
		e.respCache = resp
	}
	return resp, nil
}

// dereg request: id u64 | key u64
func (k *Kernel) handleDereg(m *simtime.Meter, req []byte) ([]byte, error) {
	if len(req) != 16 {
		return nil, fmt.Errorf("kernel: bad dereg request")
	}
	id := FuncID(binary.LittleEndian.Uint64(req))
	key := Key(binary.LittleEndian.Uint64(req[8:]))
	if err := k.DeregisterMem(id, key); err != nil {
		return nil, err
	}
	return []byte{1}, nil
}

// page request: pfn u64 → page bytes (the no-RDMA ablation path).
func (k *Kernel) handlePage(m *simtime.Meter, req []byte) ([]byte, error) {
	if len(req) != 8 {
		return nil, fmt.Errorf("kernel: bad page request")
	}
	pfn := memsim.PFN(binary.LittleEndian.Uint64(req))
	buf := make([]byte, memsim.PageSize)
	if err := k.machine.ReadFrameErr(pfn, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
