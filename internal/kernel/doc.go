// Package kernel implements the RMMAP OS primitive (§4.1, Table 1):
// register_mem, rmap, deregister_mem and set_segment, plus the remote
// page-fault path and the shadow-copy lifecycle management.
//
// One Kernel instance runs per machine. register_mem CoW-marks the caller's
// pages and takes shadow references so the registered memory outlives the
// producer container. rmap issues the auth/page-table RPC to the producer's
// kernel, then installs a VMA whose fault handler reads remote physical
// frames with one-sided RDMA; Prefetch reads many pages in one
// doorbell-batched request (§4.4).
//
// Invariants:
//
//   - Registered memory is immutable: the shadow references taken at
//     register_mem pin the exact bytes the producer published, even if the
//     producer writes (CoW) or exits afterwards.
//   - A consumer's view is installed at the producer's virtual addresses
//     (the platform's address plan guarantees no collision), so pointers
//     inside the registered region stay valid without fixup.
//   - Remote faults, prefetches, and the machine-level page cache charge
//     the Meter under distinct simtime categories (fault, readahead,
//     cache), which is what the obs layer's breakdowns report.
//   - deregister_mem releases shadow references; frames free only when the
//     last reference (local or remote cache) drops.
package kernel
