package kernel_test

import (
	"fmt"

	"rmmap/internal/kernel"
	"rmmap/internal/memsim"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

// Example walks the full RMMAP lifecycle of Table 1: register_mem on the
// producer, rmap + read on the consumer, deregister_mem at reclamation.
func Example() {
	cm := simtime.DefaultCostModel()
	fabric := rdma.NewSimFabric(cm)
	prodMach, consMach := memsim.NewMachine(0), memsim.NewMachine(1)
	fabric.Attach(prodMach)
	fabric.Attach(consMach)
	prodK := kernel.New(prodMach, rdma.NewNIC(0, fabric), cm)
	consK := kernel.New(consMach, rdma.NewNIC(1, fabric), cm)
	prodK.ServeRPC(fabric)

	// Producer: write state and register its memory.
	prodAS := memsim.NewAddressSpace(prodMach, cm)
	prodAS.SetMeter(simtime.NewMeter())
	_ = prodK.SetSegment(prodAS, memsim.SegHeap, 0x100000, 0x110000)
	_ = prodAS.Write(0x100000, []byte("state bytes"))
	meta, _ := prodK.RegisterMem(prodAS, 1, 42, 0x100000, 0x110000)
	fmt.Println("registered pages:", meta.Pages)

	// Consumer on another machine: map and read directly.
	consAS := memsim.NewAddressSpace(consMach, cm)
	consAS.SetMeter(simtime.NewMeter())
	mp, _ := consK.Rmap(consAS, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	buf := make([]byte, 11)
	_ = consAS.Read(0x100000, buf)
	fmt.Printf("consumer read: %s\n", buf)

	// Reclamation.
	_ = mp.Unmap()
	_ = prodK.DeregisterMem(meta.ID, meta.Key)
	fmt.Println("registrations left:", prodK.Registrations())
	// Output:
	// registered pages: 1
	// consumer read: state bytes
	// registrations left: 0
}
