package kernel

import (
	"bytes"
	"errors"
	"testing"

	"rmmap/internal/memsim"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

// cluster wires n machines, each with a kernel serving RPC on a shared
// SimFabric — the standard two-pod test rig.
type cluster struct {
	cm       *simtime.CostModel
	fabric   *rdma.SimFabric
	machines []*memsim.Machine
	kernels  []*Kernel
}

func newClusterCM(t *testing.T, n int, cm *simtime.CostModel) *cluster {
	t.Helper()
	c := &cluster{cm: cm, fabric: rdma.NewSimFabric(cm)}
	for i := 0; i < n; i++ {
		m := memsim.NewMachine(memsim.MachineID(i))
		c.fabric.Attach(m)
		k := New(m, rdma.NewNIC(m.ID(), c.fabric), cm)
		k.ServeRPC(c.fabric)
		c.machines = append(c.machines, m)
		c.kernels = append(c.kernels, k)
	}
	return c
}

func newCluster(t *testing.T, n int) *cluster {
	return newClusterCM(t, n, simtime.DefaultCostModel())
}

func (c *cluster) newAS(i int) *memsim.AddressSpace {
	as := memsim.NewAddressSpace(c.machines[i], c.cm)
	as.SetMeter(simtime.NewMeter())
	return as
}

// producer writes a recognizable pattern into a registered heap and
// returns its meta.
func producerSetup(t *testing.T, c *cluster, idx int, start, end uint64, pattern []byte) (*memsim.AddressSpace, VMMeta) {
	t.Helper()
	as := c.newAS(idx)
	if err := c.kernels[idx].SetSegment(as, memsim.SegHeap, start, end); err != nil {
		t.Fatal(err)
	}
	for a := start; a+uint64(len(pattern)) <= end; a += memsim.PageSize {
		if err := as.Write(a, pattern); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := c.kernels[idx].RegisterMem(as, 7, 42, start, end)
	if err != nil {
		t.Fatal(err)
	}
	return as, meta
}

func TestRegisterRmapReadRoundtrip(t *testing.T) {
	c := newCluster(t, 2)
	const start, end = uint64(0x100000), uint64(0x104000)
	_, meta := producerSetup(t, c, 0, start, end, []byte("producer-state!!"))

	cons := c.newAS(1)
	mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	if mp.RemotePages() != 4 {
		t.Errorf("remote pages = %d, want 4", mp.RemotePages())
	}
	got := make([]byte, 16)
	if err := cons.Read(start+memsim.PageSize, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "producer-state!!" {
		t.Errorf("remote read = %q", got)
	}
	// Fault + map charges landed on the consumer's meter.
	m := cons.Meter()
	if m.Get(simtime.CatMap) == 0 || m.Get(simtime.CatFault) == 0 {
		t.Errorf("charges: %v", m)
	}
}

func TestRmapAuthFailure(t *testing.T) {
	c := newCluster(t, 2)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("x"))
	cons := c.newAS(1)
	_, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, Key(999), meta.Start, meta.End)
	if err == nil || !errors.Is(err, ErrAuth) && err.Error() == "" {
		t.Errorf("wrong-key rmap: err = %v", err)
	}
}

func TestRmapRangeOutsideRegistration(t *testing.T) {
	c := newCluster(t, 2)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("x"))
	cons := c.newAS(1)
	_, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, 0x100000, 0x200000)
	if err == nil {
		t.Error("expected range error")
	}
}

func TestRmapConflictDetected(t *testing.T) {
	// Table 1: rmap fails when the consumer already maps part of the range
	// — the failure the VM plan exists to rule out.
	c := newCluster(t, 2)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x104000, []byte("x"))
	cons := c.newAS(1)
	if err := c.kernels[1].SetSegment(cons, memsim.SegHeap, 0x102000, 0x110000); err != nil {
		t.Fatal(err)
	}
	_, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if !errors.Is(err, memsim.ErrVMAOverlap) {
		t.Errorf("err = %v, want VMA overlap", err)
	}
}

func TestCoWIsolationAcrossRmap(t *testing.T) {
	// Producer mutates after register; consumer must still see the
	// registered snapshot (§4.1 coherency model).
	c := newCluster(t, 2)
	prod, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("before-register"))
	if err := prod.Write(0x100000, []byte("AFTER--REGISTER")); err != nil {
		t.Fatal(err)
	}
	cons := c.newAS(1)
	mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Unmap()
	got := make([]byte, 15)
	if err := cons.Read(0x100000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "before-register" {
		t.Errorf("consumer sees %q, want snapshot", got)
	}
}

func TestConsumerWritesArePrivate(t *testing.T) {
	c := newCluster(t, 2)
	prod, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("shared-original"))
	cons := c.newAS(1)
	mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Unmap()
	if err := cons.Write(0x100000, []byte("CONSUMER-WRITE!")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 15)
	if err := prod.Read(0x100000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared-original" {
		t.Errorf("producer corrupted by consumer write: %q", got)
	}
}

func TestProducerExitKeepsRegisteredMemory(t *testing.T) {
	// §4.1: "our kernel will keep the registered memory even if the caller
	// exits" via shadow copies.
	c := newCluster(t, 2)
	prod, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("immortal-bytes!"))
	prod.Release() // container exits

	cons := c.newAS(1)
	mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Unmap()
	got := make([]byte, 15)
	if err := cons.Read(0x100000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "immortal-bytes!" {
		t.Errorf("got %q after producer exit", got)
	}
}

func TestDeregisterFreesShadowFrames(t *testing.T) {
	c := newCluster(t, 2)
	prod, meta := producerSetup(t, c, 0, 0x100000, 0x102000, []byte("bye"))
	prod.Release()
	if c.machines[0].LiveFrames() != 2 {
		t.Fatalf("live = %d, want 2 shadows", c.machines[0].LiveFrames())
	}
	if err := c.kernels[0].DeregisterMem(meta.ID, meta.Key); err != nil {
		t.Fatal(err)
	}
	if c.machines[0].LiveFrames() != 0 {
		t.Errorf("live after dereg = %d", c.machines[0].LiveFrames())
	}
	if err := c.kernels[0].DeregisterMem(meta.ID, meta.Key); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("double dereg: %v", err)
	}
}

func TestRemoteDeregRPC(t *testing.T) {
	c := newCluster(t, 2)
	prod, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("x"))
	prod.Release()
	req := make([]byte, 16)
	putU64(req, uint64(meta.ID))
	putU64(req[8:], uint64(meta.Key))
	nic := rdma.NewNIC(1, c.fabric)
	if _, err := nic.Call(simtime.NewMeter(), 0, DeregEndpoint, req); err != nil {
		t.Fatal(err)
	}
	if c.kernels[0].Registrations() != 0 {
		t.Error("registration survived remote dereg")
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func TestLeaseScan(t *testing.T) {
	c := newCluster(t, 1)
	now := simtime.Time(0)
	c.kernels[0].Clock = func() simtime.Time { return now }
	prod, _ := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("x"))
	_ = prod
	if n := c.kernels[0].ScanExpired(simtime.Duration(100)); n != 0 {
		t.Errorf("premature reclaim: %d", n)
	}
	now = simtime.Time(200)
	if n := c.kernels[0].ScanExpired(simtime.Duration(100)); n != 1 {
		t.Errorf("reclaimed %d, want 1", n)
	}
	if c.kernels[0].Registrations() != 0 {
		t.Error("lease scan left registration")
	}
}

func TestPrefetchAvoidsFaults(t *testing.T) {
	c := newCluster(t, 2)
	const start, end = uint64(0x100000), uint64(0x100000 + 32*memsim.PageSize)
	_, meta := producerSetup(t, c, 0, start, end, bytes.Repeat([]byte("p"), 64))

	cons := c.newAS(1)
	mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.PrefetchRange(start, end); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for a := start; a < end; a += memsim.PageSize {
		if err := cons.Read(a, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 'p' {
			t.Fatalf("bad prefetched data at %#x", a)
		}
	}
	if cons.Faults() != 0 {
		t.Errorf("faults after prefetch = %d, want 0", cons.Faults())
	}
}

func TestPrefetchCheaperThanDemandFaults(t *testing.T) {
	run := func(prefetch bool) simtime.Duration {
		c := newCluster(t, 2)
		const start, end = uint64(0x100000), uint64(0x100000 + 256*memsim.PageSize)
		_, meta := producerSetup(t, c, 0, start, end, []byte("z"))
		cons := c.newAS(1)
		mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, start, end)
		if err != nil {
			t.Fatal(err)
		}
		if prefetch {
			if err := mp.PrefetchRange(start, end); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]byte, 1)
		for a := start; a < end; a += memsim.PageSize {
			if err := cons.Read(a, buf); err != nil {
				t.Fatal(err)
			}
		}
		return cons.Meter().Get(simtime.CatFault)
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("prefetch (%v) not cheaper than demand faults (%v)", with, without)
	}
}

func TestZeroFillForUntouchedProducerPages(t *testing.T) {
	c := newCluster(t, 2)
	// Producer registers 4 pages but only touches the first.
	as := c.newAS(0)
	const start, end = uint64(0x100000), uint64(0x104000)
	if err := c.kernels[0].SetSegment(as, memsim.SegHeap, start, end); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(start, []byte("touched")); err != nil {
		t.Fatal(err)
	}
	meta, err := c.kernels[0].RegisterMem(as, 1, 1, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Pages != 1 {
		t.Fatalf("registered pages = %d, want 1", meta.Pages)
	}
	cons := c.newAS(1)
	mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, start, end)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Unmap()
	buf := make([]byte, 8)
	if err := cons.Read(start+2*memsim.PageSize, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("untouched producer page not zero-filled")
		}
	}
}

func TestUnmapReleasesConsumerFrames(t *testing.T) {
	c := newCluster(t, 2)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x104000, []byte("x"))
	cons := c.newAS(1)
	mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.PrefetchRange(meta.Start, meta.End); err != nil {
		t.Fatal(err)
	}
	if c.machines[1].LiveFrames() == 0 {
		t.Fatal("no consumer frames after prefetch")
	}
	if err := mp.Unmap(); err != nil {
		t.Fatal(err)
	}
	if c.machines[1].LiveFrames() != 0 {
		t.Errorf("consumer frames leaked: %d", c.machines[1].LiveFrames())
	}
	if err := mp.Unmap(); err != nil {
		t.Errorf("double unmap: %v", err)
	}
}

func TestRPCPagingSlower(t *testing.T) {
	// Fig 15: paging over RPC must be substantially slower than RDMA.
	run := func(mode PagingMode) simtime.Duration {
		c := newCluster(t, 2)
		const start, end = uint64(0x100000), uint64(0x100000 + 64*memsim.PageSize)
		_, meta := producerSetup(t, c, 0, start, end, []byte("q"))
		cons := c.newAS(1)
		if _, err := c.kernels[1].RmapMode(cons, meta.Machine, meta.ID, meta.Key, start, end, mode); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		for a := start; a < end; a += memsim.PageSize {
			if err := cons.Read(a, buf); err != nil {
				t.Fatal(err)
			}
		}
		return cons.Meter().Get(simtime.CatFault)
	}
	rdmaTime, rpcTime := run(PagingRDMA), run(PagingRPC)
	if rpcTime <= rdmaTime {
		t.Errorf("RPC paging (%v) should be slower than RDMA (%v)", rpcTime, rdmaTime)
	}
}

func TestRmapOverTCPFabric(t *testing.T) {
	// The whole register→rmap→fault protocol across a real socket.
	cm := simtime.DefaultCostModel()
	tf := rdma.NewTCPFabric(cm)

	prodMach := memsim.NewMachine(0)
	prodNIC := rdma.NewTCPNIC(prodMach, tf)
	prodK := New(prodMach, prodNIC, cm)
	srv, err := tf.Serve(prodMach, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	prodK.ServeTCP(srv)

	consMach := memsim.NewMachine(1)
	consNIC := rdma.NewTCPNIC(consMach, tf)
	defer consNIC.Close()
	consK := New(consMach, consNIC, cm)

	prodAS := memsim.NewAddressSpace(prodMach, cm)
	prodAS.SetMeter(simtime.NewMeter())
	const start, end = uint64(0x200000), uint64(0x202000)
	if err := prodK.SetSegment(prodAS, memsim.SegHeap, start, end); err != nil {
		t.Fatal(err)
	}
	if err := prodAS.Write(start+100, []byte("tcp-rmmap works")); err != nil {
		t.Fatal(err)
	}
	meta, err := prodK.RegisterMem(prodAS, 3, 9, start, end)
	if err != nil {
		t.Fatal(err)
	}

	consAS := memsim.NewAddressSpace(consMach, cm)
	consAS.SetMeter(simtime.NewMeter())
	mp, err := consK.Rmap(consAS, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Unmap()
	got := make([]byte, 15)
	if err := consAS.Read(start+100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "tcp-rmmap works" {
		t.Errorf("got %q", got)
	}
}
