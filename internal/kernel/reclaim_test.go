package kernel

import (
	"errors"
	"testing"

	"rmmap/internal/memsim"
	"rmmap/internal/simtime"
)

// TestDeregisterMemDouble: the second deregister of the same (id, key)
// must fail with ErrNotRegistered rather than double-unref the shadows.
func TestDeregisterMemDouble(t *testing.T) {
	c := newCluster(t, 1)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x102000, []byte("reclaim-me"))
	k := c.kernels[0]
	if k.Registrations() != 1 {
		t.Fatalf("registrations = %d, want 1", k.Registrations())
	}
	if err := k.DeregisterMem(meta.ID, meta.Key); err != nil {
		t.Fatalf("first deregister: %v", err)
	}
	if k.Registrations() != 0 {
		t.Fatalf("registrations = %d after deregister, want 0", k.Registrations())
	}
	err := k.DeregisterMem(meta.ID, meta.Key)
	if !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("second deregister: err = %v, want ErrNotRegistered", err)
	}
}

// TestScanExpiredMixedAges: only registrations older than maxAge are
// reclaimed; younger ones survive and stay mappable.
func TestScanExpiredMixedAges(t *testing.T) {
	c := newCluster(t, 2)
	now := simtime.Time(0)
	k := c.kernels[0]
	k.Clock = func() simtime.Time { return now }

	// Old registration at t=0, young one at t=5s.
	_, oldMeta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("old"))
	now = 5 * simtime.Time(simtime.Second)
	as := c.newAS(0)
	if err := k.SetSegment(as, memsim.SegHeap, 0x200000, 0x201000); err != nil {
		t.Fatal(err)
	}
	youngMeta, err := k.RegisterMem(as, 8, 43, 0x200000, 0x201000)
	if err != nil {
		t.Fatal(err)
	}

	// At t=8s with maxAge 5s, only the t=0 registration has expired.
	now = 8 * simtime.Time(simtime.Second)
	if n := k.ScanExpired(5 * simtime.Second); n != 1 {
		t.Fatalf("ScanExpired reclaimed %d registrations, want 1", n)
	}
	if k.Registrations() != 1 {
		t.Fatalf("registrations = %d after scan, want 1", k.Registrations())
	}

	// The young registration is still rmappable; the old one is gone.
	cons := c.newAS(1)
	if _, err := c.kernels[1].Rmap(cons, youngMeta.Machine, youngMeta.ID,
		youngMeta.Key, youngMeta.Start, youngMeta.End); err != nil {
		t.Fatalf("rmap of surviving registration: %v", err)
	}
	cons2 := c.newAS(1)
	_, err = c.kernels[1].Rmap(cons2, oldMeta.Machine, oldMeta.ID,
		oldMeta.Key, oldMeta.Start, oldMeta.End)
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("rmap of reclaimed registration: err = %v, want ErrAuth", err)
	}

	// A later scan finds nothing new to reclaim.
	if n := k.ScanExpired(5 * simtime.Second); n != 0 {
		t.Fatalf("second scan reclaimed %d, want 0", n)
	}
}

// TestRmapAfterDeregister: once a producer deregisters, the auth RPC must
// deny consumers even when they present the correct key.
func TestRmapAfterDeregister(t *testing.T) {
	c := newCluster(t, 2)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x102000, []byte("ephemeral"))
	if err := c.kernels[0].DeregisterMem(meta.ID, meta.Key); err != nil {
		t.Fatal(err)
	}
	cons := c.newAS(1)
	_, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("rmap after deregister: err = %v, want ErrAuth", err)
	}
	// The consumer address space stays clean — a retry after
	// re-registration succeeds on the same AS.
	if _, err := producerReregister(t, c, meta); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if _, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End); err != nil {
		t.Fatalf("rmap after re-registration: %v", err)
	}
}

// producerReregister re-registers the same range under the same (id, key)
// on a fresh producer address space.
func producerReregister(t *testing.T, c *cluster, meta VMMeta) (VMMeta, error) {
	t.Helper()
	as := c.newAS(0)
	if err := c.kernels[0].SetSegment(as, memsim.SegHeap, meta.Start, meta.End); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(meta.Start, []byte("ephemeral")); err != nil {
		t.Fatal(err)
	}
	return c.kernels[0].RegisterMem(as, meta.ID, meta.Key, meta.Start, meta.End)
}
