package kernel

import (
	"errors"
	"testing"

	"rmmap/internal/memsim"
	"rmmap/internal/simtime"
)

func TestEpochFencingBlocksStaleReclaim(t *testing.T) {
	c := newCluster(t, 1)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x102000, []byte("fence-me"))
	k := c.kernels[0]

	k.AdoptEpoch(2)
	if k.CtrlEpoch() != 2 {
		t.Fatalf("CtrlEpoch = %d, want 2", k.CtrlEpoch())
	}
	// Epochs only move forward.
	k.AdoptEpoch(1)
	if k.CtrlEpoch() != 2 {
		t.Fatalf("AdoptEpoch lowered the epoch to %d", k.CtrlEpoch())
	}

	// A zombie pre-crash coordinator (epoch 1) cannot reclaim.
	err := k.DeregisterMemFenced(1, meta.ID, meta.Key)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale reclaim: err = %v, want ErrStaleEpoch", err)
	}
	if k.Registrations() != 1 {
		t.Fatalf("stale reclaim destroyed a live registration")
	}

	// The current epoch reclaims normally.
	if err := k.DeregisterMemFenced(2, meta.ID, meta.Key); err != nil {
		t.Fatalf("current-epoch reclaim: %v", err)
	}
	if k.Registrations() != 0 {
		t.Fatalf("registrations = %d, want 0", k.Registrations())
	}
}

func TestEpochFencingAdoptsNewerFromCommand(t *testing.T) {
	c := newCluster(t, 1)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("adopt"))
	k := c.kernels[0]
	k.AdoptEpoch(1)

	// A command from epoch 3 is an implicit announcement: it executes and
	// the kernel adopts 3, so epoch-2 commands are fenced afterwards.
	if err := k.DeregisterMemFenced(3, meta.ID, meta.Key); err != nil {
		t.Fatalf("newer-epoch reclaim: %v", err)
	}
	if k.CtrlEpoch() != 3 {
		t.Fatalf("CtrlEpoch = %d after epoch-3 command, want 3", k.CtrlEpoch())
	}
	if err := k.DeregisterMemFenced(2, 99, 99); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("epoch-2 command after adopting 3: %v, want ErrStaleEpoch", err)
	}
}

func TestListRegistrationsSorted(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[0]
	// Register in a scrambled order; the listing must come back sorted.
	specs := []struct {
		id  FuncID
		key Key
	}{{7, 1}, {2, 9}, {2, 3}, {11, 0}}
	base := uint64(0x100000)
	for i, sp := range specs {
		as := c.newAS(0)
		start := base + uint64(i)*0x10000
		if err := k.SetSegment(as, memsim.SegHeap, start, start+0x1000); err != nil {
			t.Fatal(err)
		}
		if _, err := k.RegisterMem(as, sp.id, sp.key, start, start+0x1000); err != nil {
			t.Fatal(err)
		}
	}
	got := k.ListRegistrations()
	want := []RegListing{{2, 3}, {2, 9}, {7, 1}, {11, 0}}
	if len(got) != len(want) {
		t.Fatalf("listed %d registrations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("listing[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestExtendACL(t *testing.T) {
	c := newCluster(t, 2)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x102000, []byte("acl"))
	k := c.kernels[0]

	// Restrict to consumer 10, then extend to 20: both map, others fail.
	if err := k.SetACL(meta.ID, meta.Key, []FuncID{10}); err != nil {
		t.Fatal(err)
	}
	if err := k.ExtendACL(meta.ID, meta.Key, []FuncID{20}); err != nil {
		t.Fatal(err)
	}
	for _, consumer := range []FuncID{10, 20} {
		as := c.newAS(1)
		mp, err := c.kernels[1].RmapAs(as, meta.Machine, meta.ID, meta.Key,
			meta.Start, meta.End, consumer, PagingRDMA)
		if err != nil {
			t.Fatalf("allowed consumer %d denied: %v", consumer, err)
		}
		mp.Unmap()
	}
	as := c.newAS(1)
	if _, err := c.kernels[1].RmapAs(as, meta.Machine, meta.ID, meta.Key,
		meta.Start, meta.End, 30, PagingRDMA); !errors.Is(err, ErrDenied) {
		t.Fatalf("unlisted consumer: %v, want ErrDenied", err)
	}

	// Extending a nil (allow-any) ACL stays allow-any.
	if err := k.SetACL(meta.ID, meta.Key, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.ExtendACL(meta.ID, meta.Key, []FuncID{40}); err != nil {
		t.Fatal(err)
	}
	as = c.newAS(1)
	if _, err := c.kernels[1].RmapAs(as, meta.Machine, meta.ID, meta.Key,
		meta.Start, meta.End, 31337, PagingRDMA); err != nil {
		t.Fatalf("allow-any ACL narrowed by ExtendACL: %v", err)
	}

	if err := k.ExtendACL(99, 99, []FuncID{1}); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("ExtendACL of unknown registration: %v, want ErrNotRegistered", err)
	}
}

func TestGossipSpreadsDeathCertificates(t *testing.T) {
	// Machines 1 and 2 never probe 0 directly; 3 does. After 3 probes the
	// crashed 0 and then heartbeats 1, and 1 heartbeats 2, everyone knows.
	c := newCluster(t, 4)
	for _, k := range c.kernels {
		k.EnableLeases(100 * simtime.Microsecond)
	}
	var deadAt1 []memsim.MachineID
	c.kernels[1].OnPeerDead = func(peer memsim.MachineID) { deadAt1 = append(deadAt1, peer) }

	c.machines[0].Crash()
	if err := c.kernels[3].Heartbeat(0); err == nil {
		t.Fatalf("probe of crashed machine succeeded")
	}
	if !c.kernels[3].PeerDead(0) {
		t.Fatalf("direct prober did not mark 0 dead")
	}

	// 3 → 1: the request piggybacks 3's certificate for 0.
	if err := c.kernels[3].Heartbeat(1); err != nil {
		t.Fatalf("heartbeat 3→1: %v", err)
	}
	if !c.kernels[1].PeerDead(0) {
		t.Fatalf("gossip on request did not spread the certificate to 1")
	}
	if len(deadAt1) != 1 || deadAt1[0] != 0 {
		t.Fatalf("OnPeerDead at 1 fired %v, want [0]", deadAt1)
	}

	// 2 → 1: the response piggybacks 1's certificates back to the prober.
	if err := c.kernels[2].Heartbeat(1); err != nil {
		t.Fatalf("heartbeat 2→1: %v", err)
	}
	if !c.kernels[2].PeerDead(0) {
		t.Fatalf("gossip on response did not spread the certificate to 2")
	}

	// Certificates are death-only: 1 renewed its lease on nothing it did
	// not probe first-hand, so no peer is spuriously fresh or suspect.
	if c.kernels[1].LeaseSuspect(2) || c.kernels[1].PeerDead(2) {
		t.Fatalf("gossip perturbed first-hand lease state")
	}
}

func TestGossipIgnoresSelfCertificates(t *testing.T) {
	c := newCluster(t, 2)
	for _, k := range c.kernels {
		k.EnableLeases(100 * simtime.Microsecond)
	}
	// A (buggy or partitioned) peer gossips a certificate naming the
	// receiver itself; the receiver must not mark itself dead.
	c.kernels[1].MarkPeerDead(1)
	if c.kernels[1].PeerDead(1) {
		t.Fatalf("kernel marked itself dead from a self certificate")
	}
	if got := c.kernels[1].DeadPeers(); len(got) != 0 {
		t.Fatalf("DeadPeers = %v, want empty", got)
	}
}
