package kernel

import (
	"bytes"
	"errors"
	"testing"

	"rmmap/internal/memsim"
	"rmmap/internal/sim"
	"rmmap/internal/simtime"
)

// withSim puts every kernel of the rig on one simulator clock and returns
// it — replication and heartbeats run in virtual time.
func (c *cluster) withSim() *sim.Simulator {
	s := sim.New()
	for _, k := range c.kernels {
		k.Clock = s.Now
	}
	return s
}

func TestHeartbeatDetectsCrashProactively(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	k.EnableLeases(100 * simtime.Microsecond)
	deaths := 0
	k.OnPeerDead = func(peer memsim.MachineID) {
		if peer != 0 {
			t.Errorf("OnPeerDead(%d), want machine 0", peer)
		}
		deaths++
	}

	if err := k.Heartbeat(0); err != nil {
		t.Fatalf("heartbeat of a live peer: %v", err)
	}
	if k.PeerDead(0) || k.LeaseSuspect(0) {
		t.Fatal("live peer marked dead/suspect")
	}
	if k.HeartbeatMeter().Get(simtime.CatHeartbeat) == 0 {
		t.Error("heartbeat probe charged nothing to CatHeartbeat")
	}

	c.machines[0].Crash()
	if err := k.Heartbeat(0); !errors.Is(err, memsim.ErrMachineCrashed) {
		t.Fatalf("heartbeat of crashed peer: %v", err)
	}
	if !k.PeerDead(0) {
		t.Fatal("crash evidence did not mark the peer dead")
	}
	if k.LeaseSuspect(0) {
		t.Fatal("dead peer reported suspect (dead is terminal, not suspect)")
	}
	// Death is sticky and fires the callback exactly once.
	_ = k.Heartbeat(0)
	if deaths != 1 {
		t.Fatalf("OnPeerDead fired %d times, want 1", deaths)
	}
}

func TestLeaseExpiryIsSuspectNotDead(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	var now simtime.Time
	k.Clock = func() simtime.Time { return now }
	k.EnableLeases(100 * simtime.Microsecond)
	expiries := 0
	k.OnLeaseExpired = func(peer memsim.MachineID) { expiries++ }

	if err := k.Heartbeat(0); err != nil {
		t.Fatal(err)
	}
	// Within the TTL a timeout does not age the lease out.
	now = simtime.Time(50 * simtime.Microsecond)
	k.ProbeFailed(0, errors.New("probe timeout"))
	if k.LeaseSuspect(0) {
		t.Fatal("lease suspect before TTL elapsed")
	}
	// Past the TTL the same failure expires it — once.
	now = simtime.Time(200 * simtime.Microsecond)
	k.ProbeFailed(0, errors.New("probe timeout"))
	k.ProbeFailed(0, errors.New("probe timeout"))
	if !k.LeaseSuspect(0) || k.PeerDead(0) {
		t.Fatalf("want suspect-not-dead, got suspect=%v dead=%v", k.LeaseSuspect(0), k.PeerDead(0))
	}
	if expiries != 1 || k.LeaseExpiries() != 1 {
		t.Fatalf("expiry fired %d times (counter %d), want 1", expiries, k.LeaseExpiries())
	}
	// A successful probe heals suspicion and re-arms the expiry callback.
	if err := k.Heartbeat(0); err != nil {
		t.Fatal(err)
	}
	if k.LeaseSuspect(0) {
		t.Fatal("renewal did not clear suspicion")
	}
	now = simtime.Time(400 * simtime.Microsecond)
	k.ProbeFailed(0, errors.New("probe timeout"))
	if expiries != 2 {
		t.Fatalf("second aging-out fired %d expiries, want 2", expiries)
	}
}

// TestLeaseFencingStaleGeneration: a consumer whose producer lease is
// suspect must revalidate before reading; when the registration was
// regenerated underneath it, the read fails with ErrStaleGeneration and
// moves no page bytes — never a frame from the old generation.
func TestLeaseFencingStaleGeneration(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	var now simtime.Time
	k.Clock = func() simtime.Time { return now }
	k.EnableLeases(100 * simtime.Microsecond)

	const start, end = uint64(0x100000), uint64(0x104000)
	prodAS, meta := producerSetup(t, c, 0, start, end, []byte("generation-one!!"))

	cons := c.newAS(1)
	mp, err := k.Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := cons.Read(start, got); err != nil || string(got) != "generation-one!!" {
		t.Fatalf("fresh read: %q, %v", got, err)
	}

	// Lease ages out; the producer deregisters and re-registers the same
	// (id, key) — a new generation over possibly-recycled frames.
	now = simtime.Time(200 * simtime.Microsecond)
	k.ProbeFailed(0, errors.New("probe timeout"))
	if !k.LeaseSuspect(0) {
		t.Fatal("lease not suspect")
	}
	if err := c.kernels[0].DeregisterMem(meta.ID, meta.Key); err != nil {
		t.Fatal(err)
	}
	prodAS.Release()
	producerSetup(t, c, 0, start, end, []byte("generation-two!!"))

	before := c.fabricPages(t)
	err = cons.Read(start+memsim.PageSize, got)
	if !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("read under stale generation: %v, want ErrStaleGeneration", err)
	}
	if moved := c.fabricPages(t) - before; moved != 0 {
		t.Fatalf("fenced read moved %d pages over the fabric", moved)
	}
	_ = mp
}

// TestLeaseRevalidationRenews: a suspect lease whose registration is
// unchanged revalidates on the read path and the read proceeds.
func TestLeaseRevalidationRenews(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	var now simtime.Time
	k.Clock = func() simtime.Time { return now }
	k.EnableLeases(100 * simtime.Microsecond)

	const start, end = uint64(0x100000), uint64(0x104000)
	_, meta := producerSetup(t, c, 0, start, end, []byte("still-here-data!"))
	cons := c.newAS(1)
	if _, err := k.Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End); err != nil {
		t.Fatal(err)
	}

	now = simtime.Time(200 * simtime.Microsecond)
	k.ProbeFailed(0, errors.New("probe timeout"))
	if !k.LeaseSuspect(0) {
		t.Fatal("lease not suspect")
	}
	got := make([]byte, 16)
	if err := cons.Read(start, got); err != nil {
		t.Fatalf("revalidated read failed: %v", err)
	}
	if string(got) != "still-here-data!" {
		t.Fatalf("revalidated read = %q", got)
	}
	if k.LeaseSuspect(0) {
		t.Fatal("successful revalidation did not renew the lease")
	}
}

// TestReplicationAndFailover: replication drains in virtual time, the
// watermark completes, and after the producer crashes a consumer rmap
// fails over to the backup's replica and reads identical bytes.
func TestReplicationAndFailover(t *testing.T) {
	c := newCluster(t, 3)
	s := c.withSim()
	c.kernels[0].EnableReplication([]memsim.MachineID{1}, s.After)

	const start, end = uint64(0x100000), uint64(0x104000) // 4 pages
	_, meta := producerSetup(t, c, 0, start, end, []byte("replicated-data!"))
	if len(meta.Backups) != 1 || meta.Backups[0] != 1 {
		t.Fatalf("meta.Backups = %v, want [1]", meta.Backups)
	}
	s.Run()

	done, total, ok := c.kernels[1].ReplicaWatermark(0, meta.ID, meta.Key)
	if !ok || done != total || total != 4 {
		t.Fatalf("watermark = %d/%d (ok=%v), want 4/4", done, total, ok)
	}
	if got := c.kernels[0].ReplicatedBytes(); got != 4*memsim.PageSize {
		t.Fatalf("replicated bytes = %d, want %d", got, 4*memsim.PageSize)
	}
	if c.kernels[0].ReplicationMeter().Get(simtime.CatReplicate) == 0 {
		t.Error("replication charged nothing to CatReplicate")
	}

	c.machines[0].Crash()
	cons := c.newAS(2)
	mp, err := c.kernels[2].RmapMeta(cons, meta, 0, PagingRDMA)
	if err != nil {
		t.Fatalf("rmap with dead producer + replica: %v", err)
	}
	if !mp.FailedOver() || mp.ReadTarget() != 1 {
		t.Fatalf("failedOver=%v readTarget=%d, want failover to machine 1", mp.FailedOver(), mp.ReadTarget())
	}
	if c.kernels[2].Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", c.kernels[2].Failovers())
	}
	for a := start; a < end; a += memsim.PageSize {
		got := make([]byte, 16)
		if err := cons.Read(a, got); err != nil {
			t.Fatalf("replica read at %#x: %v", a, err)
		}
		if !bytes.Equal(got, []byte("replicated-data!")) {
			t.Fatalf("replica bytes at %#x = %q", a, got)
		}
	}
}

// TestFailoverRefusedOnIncompleteReplica: a crash mid-replication leaves
// the watermark short; failover must refuse the partial replica and the
// rmap surfaces the crash (the platform then re-executes).
func TestFailoverRefusedOnIncompleteReplica(t *testing.T) {
	c := newCluster(t, 3)
	// Manual scheduler: collect replication events and run them by hand so
	// the crash lands between batches.
	var q []func()
	c.kernels[0].EnableReplication([]memsim.MachineID{1}, func(d simtime.Duration, fn func()) {
		q = append(q, fn)
	})

	const pages = 96 // > one 64-page batch
	const start = uint64(0x100000)
	const end = start + pages*memsim.PageSize
	_, meta := producerSetup(t, c, 0, start, end, []byte("partial-replica!"))

	// Run the prepare and exactly one page batch, then crash the producer.
	for i := 0; i < 2 && i < len(q); i++ {
		q[i]()
	}
	c.machines[0].Crash()
	for i := 2; i < len(q); i++ {
		q[i]() // surviving events must observe the crash and abort
	}

	done, total, ok := c.kernels[1].ReplicaWatermark(0, meta.ID, meta.Key)
	if !ok || done >= total {
		t.Fatalf("watermark = %d/%d (ok=%v), want a partial replica", done, total, ok)
	}

	cons := c.newAS(2)
	_, err := c.kernels[2].RmapMeta(cons, meta, 0, PagingRDMA)
	if err == nil {
		t.Fatal("rmap succeeded against an incomplete replica")
	}
	if !errors.Is(err, ErrReplicaIncomplete) {
		t.Fatalf("err = %v, want ErrReplicaIncomplete in the chain", err)
	}
	if !errors.Is(err, memsim.ErrMachineCrashed) {
		t.Fatalf("err = %v, want ErrMachineCrashed so the recovery ladder re-executes", err)
	}
	if c.kernels[2].Failovers() != 0 {
		t.Fatalf("failovers = %d, want 0 (refused)", c.kernels[2].Failovers())
	}
}

// TestDeregisterDropsReplicas: a clean deregister also retires the
// replicas so backups do not leak frames.
func TestDeregisterDropsReplicas(t *testing.T) {
	c := newCluster(t, 2)
	s := c.withSim()
	c.kernels[0].EnableReplication([]memsim.MachineID{1}, s.After)

	const start, end = uint64(0x100000), uint64(0x102000)
	_, meta := producerSetup(t, c, 0, start, end, []byte("short-lived-data"))
	s.Run()
	if _, _, ok := c.kernels[1].ReplicaWatermark(0, meta.ID, meta.Key); !ok {
		t.Fatal("no replica after replication drained")
	}
	live := c.machines[1].LiveFrames()

	if err := c.kernels[0].DeregisterMem(meta.ID, meta.Key); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if _, _, ok := c.kernels[1].ReplicaWatermark(0, meta.ID, meta.Key); ok {
		t.Fatal("replica survived deregister_mem")
	}
	if got := c.machines[1].LiveFrames(); got >= live {
		t.Fatalf("backup frames not freed: %d live, had %d", got, live)
	}
}
