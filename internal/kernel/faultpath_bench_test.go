package kernel

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"rmmap/internal/memsim"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

// BenchmarkFaultPath is the raw-speed guard over the fault → page-cache →
// fabric-read hot path. Each op is one page made present in a consumer
// address space (demand fault, cache hit, or readahead-batch install).
// The CI allocation-regression step parses `-benchmem` output from these
// benchmarks and fails if steady-state allocs/op is ever > 0 — the
// zero-allocation contract of the hot path.
//
// Steady state excludes mapping setup/teardown (rmap's page-table fetch
// allocates by design); those run under StopTimer between fault rounds.

const (
	benchPagesPerRound = 512
	benchRangeStart    = uint64(0x10_0000)
)

// faultBench is one benchmark cluster: a producer machine with a
// registered range and a consumer machine repeatedly faulting it in.
type faultBench struct {
	cm       *simtime.CostModel
	fabric   *rdma.SimFabric
	producer *memsim.Machine
	consumer *memsim.Machine
	pk, ck   *Kernel
	meta     VMMeta
	end      uint64
}

func newFaultBench(b *testing.B, pages int) *faultBench {
	b.Helper()
	cm := simtime.DefaultCostModel()
	fb := &faultBench{cm: cm, fabric: rdma.NewSimFabric(cm)}
	fb.producer = memsim.NewMachine(0)
	fb.consumer = memsim.NewMachine(1)
	fb.fabric.Attach(fb.producer)
	fb.fabric.Attach(fb.consumer)
	fb.pk = New(fb.producer, rdma.NewNIC(0, fb.fabric), cm)
	fb.ck = New(fb.consumer, rdma.NewNIC(1, fb.fabric), cm)
	fb.pk.ServeRPC(fb.fabric)
	fb.ck.ServeRPC(fb.fabric)

	fb.end = benchRangeStart + uint64(pages)*memsim.PageSize
	as := memsim.NewAddressSpace(fb.producer, cm)
	as.SetMeter(simtime.NewMeter())
	if err := fb.pk.SetSegment(as, memsim.SegHeap, benchRangeStart, fb.end); err != nil {
		b.Fatal(err)
	}
	pattern := []byte("fault-path-bench")
	for a := benchRangeStart; a < fb.end; a += memsim.PageSize {
		if err := as.Write(a, pattern); err != nil {
			b.Fatal(err)
		}
	}
	meta, err := fb.pk.RegisterMem(as, 7, 42, benchRangeStart, fb.end)
	if err != nil {
		b.Fatal(err)
	}
	fb.meta = meta
	return fb
}

// rmapFresh maps the registered range into a fresh consumer address space.
func (fb *faultBench) rmapFresh(b *testing.B) (*memsim.AddressSpace, *Mapping) {
	b.Helper()
	as := memsim.NewAddressSpace(fb.consumer, fb.cm)
	as.SetMeter(simtime.NewMeter())
	mp, err := fb.ck.Rmap(as, fb.meta.Machine, fb.meta.ID, fb.meta.Key, fb.meta.Start, fb.meta.End)
	if err != nil {
		b.Fatal(err)
	}
	return as, mp
}

// runFaultRounds drives b.N page installs through fresh consumer address
// spaces, re-mapping (outside the timer) whenever the range is exhausted.
func runFaultRounds(b *testing.B, fb *faultBench) {
	var probe [1]byte
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		b.StopTimer()
		as, _ := fb.rmapFresh(b)
		addr := benchRangeStart
		b.StartTimer()
		for addr < fb.end && done < b.N {
			if err := as.Read(addr, probe[:]); err != nil {
				b.Fatal(err)
			}
			addr += memsim.PageSize
			done++
		}
		b.StopTimer()
		as.Release()
		b.StartTimer()
	}
}

// BenchmarkFaultPath/miss: demand faults with no readahead and a cache in
// eviction churn (budget far below the working set), so every op is the
// full miss path: fault → fabric read → frame write → cache insert+evict →
// CoW-shared install.
func BenchmarkFaultPath(b *testing.B) {
	b.Run("miss", func(b *testing.B) {
		fb := newFaultBench(b, benchPagesPerRound)
		fb.ck.EnablePageCache(8 * memsim.PageSize)
		fb.ck.SetReadahead(1)
		runFaultRounds(b, fb)
	})

	// hit: the range is fully cached on the consumer machine; every op is
	// a lookup hit plus a zero-copy CoW-shared install.
	b.Run("hit", func(b *testing.B) {
		fb := newFaultBench(b, benchPagesPerRound)
		fb.ck.EnablePageCache(int64(benchPagesPerRound) * 4 * memsim.PageSize)
		fb.ck.SetReadahead(1)
		warm, _ := fb.rmapFresh(b)
		var probe [1]byte
		for a := benchRangeStart; a < fb.end; a += memsim.PageSize {
			if err := warm.Read(a, probe[:]); err != nil {
				b.Fatal(err)
			}
		}
		runFaultRounds(b, fb)
	})

	// batch: sequential faults with the adaptive readahead window open, so
	// most pages install through the doorbell-batched whole-window path
	// (fetch batch → batched frame writes → batched cache admission).
	b.Run("batch", func(b *testing.B) {
		fb := newFaultBench(b, benchPagesPerRound)
		fb.ck.EnablePageCache(8 * memsim.PageSize)
		fb.ck.SetReadahead(DefaultReadaheadMax)
		runFaultRounds(b, fb)
	})

	// uncached: the no-page-cache configuration (private writable installs),
	// the original CoW coherency model.
	b.Run("uncached", func(b *testing.B) {
		fb := newFaultBench(b, benchPagesPerRound)
		fb.ck.SetReadahead(1)
		runFaultRounds(b, fb)
	})
}

// BenchmarkFaultPathParallel measures cross-machine lock contention on the
// shared producer: GOMAXPROCS consumer machines fault the same registered
// range concurrently, so the producer's frame table and the fabric
// telemetry are hammered from every goroutine at once. Sharded locks and
// atomic counters are what keep this from convoying.
func BenchmarkFaultPathParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	cm := simtime.DefaultCostModel()
	fabric := rdma.NewSimFabric(cm)
	producer := memsim.NewMachine(0)
	fabric.Attach(producer)
	pk := New(producer, rdma.NewNIC(0, fabric), cm)
	pk.ServeRPC(fabric)

	end := benchRangeStart + uint64(benchPagesPerRound)*memsim.PageSize
	pas := memsim.NewAddressSpace(producer, cm)
	pas.SetMeter(simtime.NewMeter())
	if err := pk.SetSegment(pas, memsim.SegHeap, benchRangeStart, end); err != nil {
		b.Fatal(err)
	}
	for a := benchRangeStart; a < end; a += memsim.PageSize {
		if err := pas.Write(a, []byte("parallel-bench!!")); err != nil {
			b.Fatal(err)
		}
	}
	meta, err := pk.RegisterMem(pas, 7, 42, benchRangeStart, end)
	if err != nil {
		b.Fatal(err)
	}

	kernels := make([]*Kernel, workers)
	for i := range kernels {
		m := memsim.NewMachine(memsim.MachineID(i + 1))
		fabric.Attach(m)
		k := New(m, rdma.NewNIC(m.ID(), fabric), cm)
		k.ServeRPC(fabric)
		k.EnablePageCache(8 * memsim.PageSize)
		k.SetReadahead(1)
		kernels[i] = k
	}

	b.ReportAllocs()
	b.ResetTimer()
	perWorker := b.N/workers + 1
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(k *Kernel) {
			defer wg.Done()
			var probe [1]byte
			done := 0
			for done < perWorker {
				as := memsim.NewAddressSpace(k.Machine(), cm)
				as.SetMeter(simtime.NewMeter())
				mp, err := k.Rmap(as, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
				if err != nil {
					panic(fmt.Sprintf("rmap: %v", err))
				}
				_ = mp
				for a := benchRangeStart; a < end && done < perWorker; a += memsim.PageSize {
					if err := as.Read(a, probe[:]); err != nil {
						panic(fmt.Sprintf("read: %v", err))
					}
					done++
				}
				as.Release()
			}
		}(kernels[i])
	}
	wg.Wait()
}
