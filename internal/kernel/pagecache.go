package kernel

import (
	"container/list"
	"sync"

	"rmmap/internal/memsim"
	"rmmap/internal/simtime"
)

// Default page-cache tuning used by platform clusters. Kernel-level users
// opt in explicitly via EnablePageCache/SetReadahead.
const (
	// DefaultPageCacheBytes is the per-machine remote page cache budget.
	DefaultPageCacheBytes = 64 << 20
	// DefaultReadaheadMax caps the adaptive readahead window, in pages.
	DefaultReadaheadMax = 32
)

// CacheStats snapshots one machine's remote-page-cache activity. LiveBytes
// is the cache's current footprint; the counters are cumulative.
type CacheStats struct {
	Hits           int64
	Misses         int64
	Inserts        int64
	Evictions      int64
	ReadaheadPages int64
	LiveBytes      int64
}

// Add accumulates o into s (cluster-wide aggregation).
func (s CacheStats) Add(o CacheStats) CacheStats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Inserts += o.Inserts
	s.Evictions += o.Evictions
	s.ReadaheadPages += o.ReadaheadPages
	s.LiveBytes += o.LiveBytes
	return s
}

// Sub returns the counter deltas s−o (per-span attribution). LiveBytes is
// the net footprint change over the interval.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	s.Hits -= o.Hits
	s.Misses -= o.Misses
	s.Inserts -= o.Inserts
	s.Evictions -= o.Evictions
	s.ReadaheadPages -= o.ReadaheadPages
	s.LiveBytes -= o.LiveBytes
	return s
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cacheKey identifies a remote page: the producer machine, its physical
// frame number there, and the registration generation. The generation makes
// stale entries unreachable after deregister_mem: a producer PFN reused by
// a later registration carries a higher generation and so never matches an
// entry cached from the freed one.
type cacheKey struct {
	mac memsim.MachineID
	pfn memsim.PFN
	gen uint64
}

type cacheEntry struct {
	key   cacheKey
	local memsim.PFN // consumer-machine frame holding the page's bytes
}

// PageCache is the machine-level remote page cache: the first fault on a
// producer page fetches it once over the fabric and inserts a refcounted
// frame here; later faults from any co-located consumer install that frame
// CoW-shared instead of fetching and copying. The cache holds one reference
// per entry, bounded by a byte budget with LRU eviction.
type PageCache struct {
	mu      sync.Mutex
	machine *memsim.Machine
	budget  int64
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recently used

	hits, misses, inserts, evictions int64
	liveBytes                        int64
}

// NewPageCache returns an empty cache on machine m with the given byte
// budget (must be > 0; use a nil *PageCache to disable caching).
func NewPageCache(m *memsim.Machine, budget int64) *PageCache {
	return &PageCache{
		machine: m,
		budget:  budget,
		entries: make(map[cacheKey]*list.Element),
		lru:     list.New(),
	}
}

// Budget returns the configured byte budget.
func (c *PageCache) Budget() int64 { return c.budget }

// Lookup returns the local frame caching (mac, pfn, gen) and records a hit
// or miss. The frame stays owned by the cache; callers wanting to map it
// must take their own reference (InstallShared does).
func (c *PageCache) Lookup(mac memsim.MachineID, pfn memsim.PFN, gen uint64) (memsim.PFN, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey{mac, pfn, gen}]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).local, true
}

// Contains reports whether the page is cached without touching recency or
// the hit/miss counters (readahead eligibility checks).
func (c *PageCache) Contains(mac memsim.MachineID, pfn memsim.PFN, gen uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[cacheKey{mac, pfn, gen}]
	return ok
}

// Insert adds a fetched page, taking ownership of the caller's reference on
// local. If the key is already cached (two consumers raced on the same
// page), the caller's frame is released and the canonical one returned.
// Inserting may LRU-evict older pages past the byte budget; the eviction
// bookkeeping is charged to meter under CatCache.
func (c *PageCache) Insert(meter *simtime.Meter, cm *simtime.CostModel, mac memsim.MachineID, pfn memsim.PFN, gen uint64, local memsim.PFN) memsim.PFN {
	key := cacheKey{mac, pfn, gen}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		canonical := el.Value.(*cacheEntry).local
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.machine.Unref(local)
		return canonical
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, local: local})
	c.inserts++
	c.liveBytes += memsim.PageSize
	evicted := c.evictLocked(c.budget)
	c.mu.Unlock()
	if evicted > 0 && meter != nil {
		meter.Charge(simtime.CatCache, simtime.Scale(cm.CacheEvictPerPage, evicted))
	}
	return local
}

// evictLocked drops LRU entries until liveBytes ≤ limit, returning how many
// pages were evicted. Caller holds c.mu.
func (c *PageCache) evictLocked(limit int64) int {
	n := 0
	for c.liveBytes > limit {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.machine.Unref(e.local)
		c.liveBytes -= memsim.PageSize
		c.evictions++
		n++
	}
	return n
}

// InvalidateMachine drops every entry sourced from mac (machine crash).
func (c *PageCache) InvalidateMachine(mac memsim.MachineID) {
	c.invalidate(func(k cacheKey) bool { return k.mac == mac })
}

// InvalidateBelow drops entries sourced from mac with generation < below —
// the deregister_mem broadcast. Entries of still-live registrations (higher
// generation) survive.
func (c *PageCache) InvalidateBelow(mac memsim.MachineID, below uint64) {
	c.invalidate(func(k cacheKey) bool { return k.mac == mac && k.gen < below })
}

func (c *PageCache) invalidate(drop func(cacheKey) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if !drop(e.key) {
			continue
		}
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.machine.Unref(e.local)
		c.liveBytes -= memsim.PageSize
	}
}

// MachineBytes reports the cache footprint attributable to pages sourced
// from mac (test observability for crash invalidation).
func (c *PageCache) MachineBytes(mac memsim.MachineID) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for k := range c.entries {
		if k.mac == mac {
			n += memsim.PageSize
		}
	}
	return n
}

// Stats snapshots the cache counters.
func (c *PageCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Inserts: c.inserts, Evictions: c.evictions,
		LiveBytes: c.liveBytes,
	}
}

// Len reports the number of cached pages.
func (c *PageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
