package kernel

import (
	"sync"
	"sync/atomic"

	"rmmap/internal/memsim"
	"rmmap/internal/simtime"
)

// Default page-cache tuning used by platform clusters. Kernel-level users
// opt in explicitly via EnablePageCache/SetReadahead.
const (
	// DefaultPageCacheBytes is the per-machine remote page cache budget.
	DefaultPageCacheBytes = 64 << 20
	// DefaultReadaheadMax caps the adaptive readahead window, in pages.
	DefaultReadaheadMax = 32
)

// cacheShardCount is the number of lock shards; a power of two so the
// shard pick is a mask of the key hash (DESIGN.md §12).
const (
	cacheShardCount = 16
	cacheShardMask  = cacheShardCount - 1
)

// CacheStats snapshots one machine's remote-page-cache activity. LiveBytes
// is the cache's current footprint; the counters are cumulative.
type CacheStats struct {
	Hits           int64
	Misses         int64
	Inserts        int64
	Evictions      int64
	ReadaheadPages int64
	LiveBytes      int64
}

// Add accumulates o into s (cluster-wide aggregation).
func (s CacheStats) Add(o CacheStats) CacheStats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Inserts += o.Inserts
	s.Evictions += o.Evictions
	s.ReadaheadPages += o.ReadaheadPages
	s.LiveBytes += o.LiveBytes
	return s
}

// Sub returns the counter deltas s−o (per-span attribution). LiveBytes is
// the net footprint change over the interval.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	s.Hits -= o.Hits
	s.Misses -= o.Misses
	s.Inserts -= o.Inserts
	s.Evictions -= o.Evictions
	s.ReadaheadPages -= o.ReadaheadPages
	s.LiveBytes -= o.LiveBytes
	return s
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cacheKey identifies a remote page: the producer machine, its physical
// frame number there, and the registration generation. The generation makes
// stale entries unreachable after deregister_mem: a producer PFN reused by
// a later registration carries a higher generation and so never matches an
// entry cached from the freed one.
type cacheKey struct {
	mac memsim.MachineID
	pfn memsim.PFN
	gen uint64
}

// shard picks the key's lock shard with a splitmix-style mix of all three
// key fields (producer PFNs are dense small integers; without mixing they
// would pile onto a few shards).
func (k cacheKey) shard() int {
	h := uint64(k.mac)*0x9e3779b97f4a7c15 ^ uint64(k.pfn)*0xbf58476d1ce4e5b9 ^ k.gen*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 27
	return int(h) & cacheShardMask
}

// cacheEntry is one cached page. Entries are intrusive nodes on two lists
// of their shard — the recency list and the per-producer index — and are
// pooled per shard on removal, so steady-state insert/evict churn
// allocates nothing.
type cacheEntry struct {
	key   cacheKey
	local memsim.PFN // consumer-machine frame holding the page's bytes
	seq   uint64     // global recency stamp; larger = more recently used

	prev, next   *cacheEntry // shard recency list (head = MRU)
	pprev, pnext *cacheEntry // per-producer index, insertion order
}

// cacheShard is one lock stripe: its own map, recency list, per-producer
// index, and entry free list.
type cacheShard struct {
	mu       sync.Mutex
	entries  map[cacheKey]*cacheEntry
	lruHead  *cacheEntry                      // most recently used
	lruTail  *cacheEntry                      // least recently used
	prod     map[memsim.MachineID]*cacheEntry // head of per-producer list
	prodTail map[memsim.MachineID]*cacheEntry // tail (O(1) append)
	free     []*cacheEntry
}

// PageCache is the machine-level remote page cache: the first fault on a
// producer page fetches it once over the fabric and inserts a refcounted
// frame here; later faults from any co-located consumer install that frame
// CoW-shared instead of fetching and copying. The cache holds one reference
// per entry, bounded by a byte budget with LRU eviction.
//
// The cache is striped: entries live in cacheShardCount independent shards
// keyed by a hash of (producer, pfn, generation), so concurrent lookups
// from parallel workers never convoy on one mutex. Recency stays globally
// exact — every touch stamps a cache-wide sequence number, and eviction
// removes the minimum-sequence entry across all shard tails — so the
// eviction order is identical to a single global LRU list (the determinism
// envelope pins this; DESIGN.md §12).
type PageCache struct {
	machine *memsim.Machine
	budget  int64
	shards  [cacheShardCount]cacheShard
	seq     atomic.Uint64

	hits, misses, inserts, evictions atomic.Int64
	liveBytes                        atomic.Int64

	// invalScanned counts entries examined by invalidation walks; the
	// per-producer index keeps it O(entries of that producer), which the
	// regression test asserts.
	invalScanned atomic.Int64
}

// NewPageCache returns an empty cache on machine m with the given byte
// budget (must be > 0; use a nil *PageCache to disable caching).
func NewPageCache(m *memsim.Machine, budget int64) *PageCache {
	c := &PageCache{machine: m, budget: budget}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*cacheEntry)
		c.shards[i].prod = make(map[memsim.MachineID]*cacheEntry)
		c.shards[i].prodTail = make(map[memsim.MachineID]*cacheEntry)
	}
	return c
}

// Budget returns the configured byte budget.
func (c *PageCache) Budget() int64 { return c.budget }

// --- shard list plumbing (callers hold sh.mu) ---

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.prev = e
	}
	sh.lruHead = e
	if sh.lruTail == nil {
		sh.lruTail = e
	}
}

func (sh *cacheShard) unlinkLRU(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) moveToFront(e *cacheEntry) {
	if sh.lruHead == e {
		return
	}
	sh.unlinkLRU(e)
	sh.pushFront(e)
}

// linkProducer appends e to its producer's index (insertion order, so
// invalidation drops — and thus frame unrefs — replay deterministically).
func (sh *cacheShard) linkProducer(e *cacheEntry) {
	mac := e.key.mac
	tail := sh.prodTail[mac]
	e.pprev, e.pnext = tail, nil
	if tail == nil {
		sh.prod[mac] = e
	} else {
		tail.pnext = e
	}
	sh.prodTail[mac] = e
}

func (sh *cacheShard) unlinkProducer(e *cacheEntry) {
	mac := e.key.mac
	if e.pprev != nil {
		e.pprev.pnext = e.pnext
	} else {
		if e.pnext == nil {
			delete(sh.prod, mac)
		} else {
			sh.prod[mac] = e.pnext
		}
	}
	if e.pnext != nil {
		e.pnext.pprev = e.pprev
	} else {
		if e.pprev == nil {
			delete(sh.prodTail, mac)
		} else {
			sh.prodTail[mac] = e.pprev
		}
	}
	e.pprev, e.pnext = nil, nil
}

// removeEntry unlinks e from every shard structure and pools it.
func (sh *cacheShard) removeEntry(e *cacheEntry) {
	sh.unlinkLRU(e)
	sh.unlinkProducer(e)
	delete(sh.entries, e.key)
	*e = cacheEntry{}
	sh.free = append(sh.free, e)
}

func (sh *cacheShard) alloc() *cacheEntry {
	if n := len(sh.free); n > 0 {
		e := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return e
	}
	return &cacheEntry{}
}

// Lookup returns the local frame caching (mac, pfn, gen) and records a hit
// or miss. The frame stays owned by the cache; callers wanting to map it
// must take their own reference (InstallShared does).
func (c *PageCache) Lookup(mac memsim.MachineID, pfn memsim.PFN, gen uint64) (memsim.PFN, bool) {
	key := cacheKey{mac, pfn, gen}
	sh := &c.shards[key.shard()]
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return 0, false
	}
	sh.moveToFront(e)
	e.seq = c.seq.Add(1)
	local := e.local
	sh.mu.Unlock()
	c.hits.Add(1)
	return local, true
}

// Contains reports whether the page is cached without touching recency or
// the hit/miss counters (readahead eligibility checks).
func (c *PageCache) Contains(mac memsim.MachineID, pfn memsim.PFN, gen uint64) bool {
	key := cacheKey{mac, pfn, gen}
	sh := &c.shards[key.shard()]
	sh.mu.Lock()
	_, ok := sh.entries[key]
	sh.mu.Unlock()
	return ok
}

// Insert adds a fetched page, taking ownership of the caller's reference on
// local. If the key is already cached (two consumers raced on the same
// page), the caller's frame is released and the canonical one returned.
// Inserting may LRU-evict older pages past the byte budget; the eviction
// bookkeeping is charged to meter under CatCache.
func (c *PageCache) Insert(meter *simtime.Meter, cm *simtime.CostModel, mac memsim.MachineID, pfn memsim.PFN, gen uint64, local memsim.PFN) memsim.PFN {
	canonical, fresh := c.insertOne(cacheKey{mac, pfn, gen}, local)
	if !fresh {
		return canonical
	}
	if evicted := c.evictToBudget(); evicted > 0 && meter != nil {
		meter.Charge(simtime.CatCache, simtime.Scale(cm.CacheEvictPerPage, evicted))
	}
	return canonical
}

// insertOne admits one page into its shard, returning the canonical frame
// and whether a new entry was created (false = duplicate; the caller's
// frame was released).
func (c *PageCache) insertOne(key cacheKey, local memsim.PFN) (memsim.PFN, bool) {
	sh := &c.shards[key.shard()]
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.moveToFront(e)
		e.seq = c.seq.Add(1)
		canonical := e.local
		sh.mu.Unlock()
		c.machine.Unref(local)
		return canonical, false
	}
	e := sh.alloc()
	e.key = key
	e.local = local
	e.seq = c.seq.Add(1)
	sh.pushFront(e)
	sh.linkProducer(e)
	sh.entries[key] = e
	sh.mu.Unlock()
	c.inserts.Add(1)
	c.liveBytes.Add(memsim.PageSize)
	return local, true
}

// InsertBatch admits a fetched readahead window in one pass: every page is
// inserted into its shard with no per-page eviction round-trip. canon
// receives the canonical frame for each page (the caller's frame, or an
// existing entry's on duplicate keys) and must be len(locals). The
// caller's reference on each duplicate's frame is released, exactly like
// Insert. Admission does NOT evict: the caller takes its own references on
// the canonical frames first (InstallSharedBatch) and then calls
// TrimToBudget, so a window larger than the budget can never free a frame
// between cache admission and page-table install.
func (c *PageCache) InsertBatch(mac memsim.MachineID, gen uint64, rpfns, locals, canon []memsim.PFN) {
	for i := range locals {
		canon[i], _ = c.insertOne(cacheKey{mac, rpfns[i], gen}, locals[i])
	}
}

// TrimToBudget runs one eviction sweep back to the byte budget, charging
// the bookkeeping to meter under CatCache — the single shard-ordered
// critical-section chain that closes a batched admission.
func (c *PageCache) TrimToBudget(meter *simtime.Meter, cm *simtime.CostModel) {
	if evicted := c.evictToBudget(); evicted > 0 && meter != nil {
		meter.Charge(simtime.CatCache, simtime.Scale(cm.CacheEvictPerPage, evicted))
	}
}

// evictToBudget drops globally least-recent entries until liveBytes ≤
// budget, returning how many pages were evicted. Exact LRU across shards:
// each round peeks every shard's tail and evicts the minimum sequence.
func (c *PageCache) evictToBudget() int {
	n := 0
	for c.liveBytes.Load() > c.budget {
		best := -1
		var bestSeq uint64
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			if t := sh.lruTail; t != nil && (best == -1 || t.seq < bestSeq) {
				best, bestSeq = i, t.seq
			}
			sh.mu.Unlock()
		}
		if best == -1 {
			break
		}
		sh := &c.shards[best]
		sh.mu.Lock()
		t := sh.lruTail
		if t == nil {
			sh.mu.Unlock()
			continue
		}
		local := t.local
		sh.removeEntry(t)
		sh.mu.Unlock()
		c.liveBytes.Add(-memsim.PageSize)
		c.evictions.Add(1)
		c.machine.Unref(local)
		n++
	}
	return n
}

// InvalidateMachine drops every entry sourced from mac (machine crash).
func (c *PageCache) InvalidateMachine(mac memsim.MachineID) {
	c.invalidateProducer(mac, func(k cacheKey) bool { return true })
}

// InvalidateBelow drops entries sourced from mac with generation < below —
// the deregister_mem broadcast. Entries of still-live registrations (higher
// generation) survive.
func (c *PageCache) InvalidateBelow(mac memsim.MachineID, below uint64) {
	c.invalidateProducer(mac, func(k cacheKey) bool { return k.gen < below })
}

// invalidateProducer walks only mac's per-producer index in each shard —
// O(entries of that producer), not a full cache scan — dropping entries
// drop() selects, in insertion order.
func (c *PageCache) invalidateProducer(mac memsim.MachineID, drop func(cacheKey) bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var next *cacheEntry
		for e := sh.prod[mac]; e != nil; e = next {
			next = e.pnext
			c.invalScanned.Add(1)
			if !drop(e.key) {
				continue
			}
			local := e.local
			sh.removeEntry(e)
			c.liveBytes.Add(-memsim.PageSize)
			c.machine.Unref(local)
		}
		sh.mu.Unlock()
	}
}

// invalidate drops every entry drop() selects — the full-scan fallback
// used only by EnablePageCache teardown (predicates not keyed by
// producer).
func (c *PageCache) invalidate(drop func(cacheKey) bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var next *cacheEntry
		for e := sh.lruHead; e != nil; e = next {
			next = e.next
			c.invalScanned.Add(1)
			if !drop(e.key) {
				continue
			}
			local := e.local
			sh.removeEntry(e)
			c.liveBytes.Add(-memsim.PageSize)
			c.machine.Unref(local)
		}
		sh.mu.Unlock()
	}
}

// MachineBytes reports the cache footprint attributable to pages sourced
// from mac (test observability for crash invalidation).
func (c *PageCache) MachineBytes(mac memsim.MachineID) int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for e := sh.prod[mac]; e != nil; e = e.pnext {
			n += memsim.PageSize
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *PageCache) Stats() CacheStats {
	return CacheStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Inserts: c.inserts.Load(), Evictions: c.evictions.Load(),
		LiveBytes: c.liveBytes.Load(),
	}
}

// InvalScanned reports the cumulative number of cache entries examined by
// invalidation walks. With the per-producer index, invalidating one
// producer's registration scans only that producer's entries — the
// regression test pins this so a future full-scan reintroduction fails.
func (c *PageCache) InvalScanned() int64 { return c.invalScanned.Load() }

// Len reports the number of cached pages.
func (c *PageCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
