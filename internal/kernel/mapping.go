package kernel

import (
	"encoding/binary"
	"fmt"

	"rmmap/internal/memsim"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

// PagingMode selects how the consumer fetches remote pages on fault.
type PagingMode int

const (
	// PagingRDMA reads pages with one-sided RDMA (the design point).
	PagingRDMA PagingMode = iota
	// PagingRPC fetches pages with RPCs to the producer kernel — the
	// Fig 15 ablation showing why the RDMA co-design is necessary
	// (the paper reports a 62.2% slowdown without it).
	PagingRPC
)

// Mapping is a live rmap: the producer's [Start, End) mapped into a
// consumer address space.
type Mapping struct {
	k        *Kernel
	as       *memsim.AddressSpace
	target   memsim.MachineID
	Start    uint64
	End      uint64
	remotePT map[memsim.VPN]memsim.PFN
	mode     PagingMode
	unmapped bool
}

// Rmap implements rmap(mac_addr, id, key, vm_start, vm_end) for consumer
// address space as: it issues the auth/page-table RPC to the producer's
// kernel (charged to the map category), then installs a remote-backed VMA.
// It fails if the range conflicts with an existing mapping — the error the
// address-space plan exists to prevent.
func (k *Kernel) Rmap(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64) (*Mapping, error) {
	return k.RmapMode(as, mac, id, key, start, end, PagingRDMA)
}

// RmapMode is Rmap with an explicit paging mode (ablations only).
func (k *Kernel) RmapMode(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64, mode PagingMode) (*Mapping, error) {
	return k.RmapAs(as, mac, id, key, start, end, 0, mode)
}

// RmapAs is RmapMode with an explicit consumer identity, validated against
// the registration's ACL (connection-based permission control, §4.1).
// Consumer 0 is anonymous and passes only ACL-free registrations.
func (k *Kernel) RmapAs(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64, consumer FuncID, mode PagingMode) (*Mapping, error) {
	if as.Machine() != k.machine {
		return nil, fmt.Errorf("kernel: address space not on machine %d", k.machine.ID())
	}
	meter := as.Meter()

	// Auth RPC, piggybacking the page-table fetch (§4.1 Fig 8 step 2).
	req := make([]byte, 40)
	binary.LittleEndian.PutUint64(req, uint64(id))
	binary.LittleEndian.PutUint64(req[8:], uint64(key))
	binary.LittleEndian.PutUint64(req[16:], start)
	binary.LittleEndian.PutUint64(req[24:], end)
	binary.LittleEndian.PutUint64(req[32:], uint64(consumer))
	resp, err := k.transport.Call(meter, mac, AuthEndpoint, req)
	if err != nil {
		return nil, err
	}
	if len(resp) < 4 {
		return nil, fmt.Errorf("kernel: bad auth response")
	}
	count := int(binary.LittleEndian.Uint32(resp))
	if len(resp) != 4+16*count {
		return nil, fmt.Errorf("kernel: bad auth response length")
	}
	pt := make(map[memsim.VPN]memsim.PFN, count)
	for i := 0; i < count; i++ {
		vpn := memsim.VPN(binary.LittleEndian.Uint64(resp[4+i*16:]))
		pfn := memsim.PFN(binary.LittleEndian.Uint64(resp[4+i*16+8:]))
		pt[vpn] = pfn
	}

	mp := &Mapping{k: k, as: as, target: mac, Start: start, End: end, remotePT: pt, mode: mode}
	vma := &memsim.VMA{
		Start: start, End: end, Kind: memsim.SegRmap, Writable: true,
		Fault: mp.fault,
	}
	if err := as.AddVMA(vma); err != nil {
		return nil, err
	}
	meter.Charge(simtime.CatMap, k.cm.VMACreate)
	return mp, nil
}

// fault resolves one page: fetch the remote frame (or zero-fill pages the
// producer never touched), install it as a private writable copy. Consumer
// writes therefore never reach the producer — the CoW coherency model.
func (mp *Mapping) fault(as *memsim.AddressSpace, vaddr uint64, ft memsim.FaultType) error {
	meter := as.Meter()
	meter.Charge(simtime.CatFault, mp.k.cm.PageFault)
	vpn := memsim.PageOf(vaddr)
	local := as.Machine().AllocFrame()
	if rpfn, ok := mp.remotePT[vpn]; ok {
		buf := make([]byte, memsim.PageSize)
		if err := mp.readRemote(meter, rpfn, buf); err != nil {
			as.Machine().Unref(local)
			return err
		}
		as.Machine().WriteFrame(local, 0, buf)
	}
	as.InstallPTE(vpn, memsim.PTE{PFN: local, Flags: memsim.FlagPresent | memsim.FlagWritable})
	return nil
}

func (mp *Mapping) readRemote(meter *simtime.Meter, pfn memsim.PFN, buf []byte) error {
	switch mp.mode {
	case PagingRPC:
		req := make([]byte, 8)
		binary.LittleEndian.PutUint64(req, uint64(pfn))
		nic, ok := mp.k.transport.(interface {
			CallCat(*simtime.Meter, simtime.Category, memsim.MachineID, string, []byte) ([]byte, error)
		})
		var resp []byte
		var err error
		if ok {
			resp, err = nic.CallCat(meter, simtime.CatFault, mp.target, PageEndpoint, req)
		} else {
			resp, err = mp.k.transport.Call(meter, mp.target, PageEndpoint, req)
		}
		if err != nil {
			return err
		}
		copy(buf, resp)
		return nil
	default:
		return mp.k.transport.Read(meter, mp.target, pfn, 0, buf)
	}
}

// Prefetch reads the given pages in one doorbell-batched request and
// installs them, so later accesses hit locally with no fault (§4.4). Pages
// outside the mapping or already present are skipped; unknown remote pages
// are zero-filled without network cost.
func (mp *Mapping) Prefetch(vpns []memsim.VPN) error {
	meter := mp.as.Meter()
	type slot struct {
		vpn  memsim.VPN
		pfn  memsim.PFN // local destination
		rpfn memsim.PFN
	}
	var reqs []rdma.PageRead
	var slots []slot
	for _, vpn := range vpns {
		base := vpn.Base()
		if base < mp.Start || base >= mp.End {
			continue
		}
		if pte, ok := mp.as.Lookup(vpn); ok && pte.Present() {
			continue
		}
		local := mp.as.Machine().AllocFrame()
		if rpfn, ok := mp.remotePT[vpn]; ok {
			slots = append(slots, slot{vpn, local, rpfn})
			reqs = append(reqs, rdma.PageRead{PFN: rpfn, Buf: make([]byte, memsim.PageSize)})
		} else {
			mp.as.InstallPTE(vpn, memsim.PTE{PFN: local, Flags: memsim.FlagPresent | memsim.FlagWritable})
		}
	}
	if len(reqs) == 0 {
		return nil
	}
	if err := mp.k.transport.ReadPages(meter, mp.target, reqs); err != nil {
		for _, s := range slots {
			mp.as.Machine().Unref(s.pfn)
		}
		return err
	}
	for i, s := range slots {
		mp.as.Machine().WriteFrame(s.pfn, 0, reqs[i].Buf)
		mp.as.InstallPTE(s.vpn, memsim.PTE{PFN: s.pfn, Flags: memsim.FlagPresent | memsim.FlagWritable})
	}
	return nil
}

// PrefetchRange prefetches every page of [start, end) within the mapping.
func (mp *Mapping) PrefetchRange(start, end uint64) error {
	var vpns []memsim.VPN
	for vpn := memsim.PageOf(start); vpn.Base() < end; vpn++ {
		vpns = append(vpns, vpn)
	}
	return mp.Prefetch(vpns)
}

// Unmap tears the mapping down, releasing the consumer-side frames. It is
// what the hybrid GC calls when the remote root dies (§4.3).
func (mp *Mapping) Unmap() error {
	if mp.unmapped {
		return nil
	}
	mp.unmapped = true
	return mp.as.Unmap(mp.Start, mp.End)
}

// Target returns the producer machine.
func (mp *Mapping) Target() memsim.MachineID { return mp.target }

// RemotePages reports how many remote pages the mapping knows about.
func (mp *Mapping) RemotePages() int { return len(mp.remotePT) }
