package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"rmmap/internal/memsim"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

// PagingMode selects how the consumer fetches remote pages on fault.
type PagingMode int

const (
	// PagingRDMA reads pages with one-sided RDMA (the design point).
	PagingRDMA PagingMode = iota
	// PagingRPC fetches pages with RPCs to the producer kernel — the
	// Fig 15 ablation showing why the RDMA co-design is necessary
	// (the paper reports a 62.2% slowdown without it).
	PagingRPC
)

// pageBufPool recycles page-sized staging buffers for the cold paths that
// still stage bytes before a frame write (replication pushes). The fault
// hot path no longer stages at all: fabric reads land directly in the
// destination frame via Machine.BorrowFrame (DESIGN.md §12).
var pageBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, memsim.PageSize)
		return &b
	},
}

func getPageBuf() *[]byte  { return pageBufPool.Get().(*[]byte) }
func putPageBuf(b *[]byte) { pageBufPool.Put(b) }

// readPagesCatTransport is the optional interface for category-attributed
// doorbell batches (rdma.NIC.ReadPagesCat); readahead batches fall back to
// plain ReadPages (CatFault) on transports that lack it.
type readPagesCatTransport interface {
	ReadPagesCat(m *simtime.Meter, cat simtime.Category, target memsim.MachineID, reqs []rdma.PageRead) error
}

// Mapping is a live rmap: the producer's [Start, End) mapped into a
// consumer address space.
type Mapping struct {
	k        *Kernel
	as       *memsim.AddressSpace
	target   memsim.MachineID
	Start    uint64
	End      uint64
	remotePT map[memsim.VPN]memsim.PFN
	mode     PagingMode
	unmapped bool

	// gen is the producer registration's generation, keying page-cache
	// entries for this mapping's pages.
	gen uint64

	// Failover state. target stays the LOGICAL producer — it keys the page
	// cache, so entries fetched before a crash remain valid hits after —
	// while readTarget is the machine fabric reads actually go to. After a
	// failover readTarget is a backup and physPT maps vpn → backup frame;
	// until then physPT is nil and reads use remotePT on readTarget.
	id         FuncID
	key        Key
	consumer   FuncID
	backups    []memsim.MachineID
	readTarget memsim.MachineID
	physPT     map[memsim.VPN]memsim.PFN
	failedOver bool

	// Adaptive readahead state: raWindow is the current window in pages
	// (doubled on sequential faults, reset to 1 on a stride break, capped
	// at Kernel.raMax); raNext is the predicted next sequential fault.
	raWindow int
	raNext   memsim.VPN

	// Preallocated fault scratch (zero-allocation contract, DESIGN.md
	// §12): winBuf holds the readahead window, and the four parallel
	// slices below are the doorbell batch descriptors and install staging
	// for it. All grow to the window cap on first use and are reused for
	// every later batch fault of this mapping. A mapping is used by one
	// container at a time (like its address space), so the scratch needs
	// no locking.
	winBuf []memsim.VPN
	locals []memsim.PFN    // freshly allocated destination frames
	rpfns  []memsim.PFN    // producer (logical) frame numbers, cache keys
	canon  []memsim.PFN    // canonical frames returned by cache admission
	reqs   []rdma.PageRead // doorbell batch descriptors
}

// ensureScratch sizes the batch scratch for an n-page window.
func (mp *Mapping) ensureScratch(n int) {
	if cap(mp.locals) < n {
		mp.locals = make([]memsim.PFN, 0, n)
		mp.rpfns = make([]memsim.PFN, 0, n)
		mp.canon = make([]memsim.PFN, n)
		mp.reqs = make([]rdma.PageRead, 0, n)
	}
	mp.locals = mp.locals[:0]
	mp.rpfns = mp.rpfns[:0]
	mp.reqs = mp.reqs[:0]
}

// Rmap implements rmap(mac_addr, id, key, vm_start, vm_end) for consumer
// address space as: it issues the auth/page-table RPC to the producer's
// kernel (charged to the map category), then installs a remote-backed VMA.
// It fails if the range conflicts with an existing mapping — the error the
// address-space plan exists to prevent.
func (k *Kernel) Rmap(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64) (*Mapping, error) {
	return k.RmapMode(as, mac, id, key, start, end, PagingRDMA)
}

// RmapMode is Rmap with an explicit paging mode (ablations only).
func (k *Kernel) RmapMode(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64, mode PagingMode) (*Mapping, error) {
	return k.RmapAs(as, mac, id, key, start, end, 0, mode)
}

// RmapAs is RmapMode with an explicit consumer identity, validated against
// the registration's ACL (connection-based permission control, §4.1).
// Consumer 0 is anonymous and passes only ACL-free registrations.
func (k *Kernel) RmapAs(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64, consumer FuncID, mode PagingMode) (*Mapping, error) {
	return k.rmapFull(as, mac, id, key, start, end, consumer, mode, nil)
}

// RmapMeta is RmapAs driven by a registration's VMMeta, which carries the
// backup machine list: with it the consumer can fail over to a replica
// even when the producer is already dead at rmap time (the auth RPC that
// would have named the backups can no longer be answered).
func (k *Kernel) RmapMeta(as *memsim.AddressSpace, meta VMMeta, consumer FuncID, mode PagingMode) (*Mapping, error) {
	return k.rmapFull(as, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End, consumer, mode, meta.Backups)
}

func (k *Kernel) rmapFull(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64, consumer FuncID, mode PagingMode, backups []memsim.MachineID) (*Mapping, error) {
	if as.Machine() != k.machine {
		return nil, fmt.Errorf("kernel: address space not on machine %d", k.machine.ID())
	}
	meter := as.Meter()

	mp := &Mapping{k: k, as: as, target: mac, Start: start, End: end, mode: mode,
		id: id, key: key, consumer: consumer, readTarget: mac,
		backups: append([]memsim.MachineID(nil), backups...)}

	// A lease that already proved the producer dead skips the doomed auth
	// RPC and goes straight to a replica.
	if mode == PagingRDMA && len(mp.backups) > 0 && k.PeerDead(mac) {
		if err := mp.failover(meter); err != nil {
			return nil, err
		}
		return mp.finish(meter)
	}

	// Auth RPC, piggybacking the page-table fetch (§4.1 Fig 8 step 2).
	req := make([]byte, 40)
	binary.LittleEndian.PutUint64(req, uint64(id))
	binary.LittleEndian.PutUint64(req[8:], uint64(key))
	binary.LittleEndian.PutUint64(req[16:], start)
	binary.LittleEndian.PutUint64(req[24:], end)
	binary.LittleEndian.PutUint64(req[32:], uint64(consumer))
	resp, err := k.transport.Call(meter, mac, AuthEndpoint, req)
	if err != nil {
		if mode == PagingRDMA && len(mp.backups) > 0 && errors.Is(err, memsim.ErrMachineCrashed) {
			k.ProbeFailed(mac, err)
			if ferr := mp.failover(meter); ferr != nil {
				return nil, ferr
			}
			return mp.finish(meter)
		}
		return nil, err
	}
	ar, err := parseAuthResponse(resp)
	if err != nil {
		return nil, err
	}
	if len(ar.backups) > 0 {
		// The producer's own backup list is authoritative.
		mp.backups = ar.backups
	}
	mp.remotePT = ar.pages
	mp.gen = ar.gen
	return mp.finish(meter)
}

// finish installs the remote-backed VMA once the page table (producer's or
// a replica's) is in hand.
func (mp *Mapping) finish(meter *simtime.Meter) (*Mapping, error) {
	vma := &memsim.VMA{
		Start: mp.Start, End: mp.End, Kind: memsim.SegRmap, Writable: true,
		Fault: mp.fault,
	}
	if err := mp.as.AddVMA(vma); err != nil {
		return nil, err
	}
	meter.Charge(simtime.CatMap, mp.k.cm.VMACreate)
	return mp, nil
}

// failover re-points the mapping at the first backup holding a complete
// replica of the registration. The mapping's logical identity — target
// machine, producer frame numbers, generation — is untouched, so page-cache
// entries fetched before the crash stay valid hits; only readTarget and the
// physical page table change. Generation fencing applies: a replica of a
// different generation than the one this mapping was authorized for is
// useless (ErrStaleGeneration). When every backup fails, the returned error
// wraps ErrMachineCrashed so the platform's ladder falls back to
// re-execution.
func (mp *Mapping) failover(meter *simtime.Meter) error {
	var lastErr error = ErrReplicaIncomplete
	for _, b := range mp.backups {
		if b == mp.target {
			continue
		}
		gen, complete, logical, phys, err := mp.k.replicaAuthCall(
			meter, b, mp.target, mp.id, mp.key, mp.Start, mp.End, mp.consumer)
		if err != nil {
			lastErr = err
			continue
		}
		if mp.remotePT != nil && gen != mp.gen {
			lastErr = ErrStaleGeneration
			continue
		}
		if !complete {
			lastErr = ErrReplicaIncomplete
			continue
		}
		if mp.remotePT == nil {
			// Rmap-time failover: the replica's view is the page table.
			mp.remotePT = logical
			mp.gen = gen
		}
		mp.physPT = phys
		mp.readTarget = b
		mp.failedOver = true
		mp.k.failovers.Add(1)
		return nil
	}
	return fmt.Errorf("kernel: failover of [%#x,%#x) from machine %d failed (%w): %w",
		mp.Start, mp.End, mp.target, lastErr, memsim.ErrMachineCrashed)
}

// tryFailover reacts to a failed fabric read: if the read target crashed
// and a backup may hold a complete replica, re-point and tell the caller
// to retry once.
func (mp *Mapping) tryFailover(meter *simtime.Meter, err error) bool {
	if mp.failedOver || mp.mode != PagingRDMA || len(mp.backups) == 0 {
		return false
	}
	if !errors.Is(err, memsim.ErrMachineCrashed) {
		return false
	}
	mp.k.ProbeFailed(mp.target, err)
	return mp.failover(meter) == nil
}

// physPFN maps a vpn to the frame number to read over the fabric: the
// backup's frame after a failover, the producer's otherwise.
func (mp *Mapping) physPFN(vpn memsim.VPN) memsim.PFN {
	if mp.physPT != nil {
		return mp.physPT[vpn]
	}
	return mp.remotePT[vpn]
}

// ensureFresh applies the lease fence before trusting the mapping. A dead
// producer triggers proactive failover (or a crash error, letting the
// platform re-execute) instead of a doomed read; a suspect lease — aged
// out with no crash evidence, e.g. a partition — revalidates the
// registration's generation with the producer before any page is read. A
// generation mismatch is terminal: frames of the old generation may
// already be reclaimed or reused, so no read is attempted at all.
func (mp *Mapping) ensureFresh(meter *simtime.Meter) error {
	if mp.failedOver || !mp.k.LeasesEnabled() || mp.target == mp.as.Machine().ID() {
		return nil
	}
	if mp.k.PeerDead(mp.target) {
		if mp.mode == PagingRDMA && len(mp.backups) > 0 {
			return mp.failover(meter)
		}
		return fmt.Errorf("kernel: producer machine %d dead: %w", mp.target, memsim.ErrMachineCrashed)
	}
	if mp.k.LeaseSuspect(mp.target) {
		return mp.revalidate(meter)
	}
	return nil
}

// revalidate re-runs the auth RPC for a suspect producer and fences on
// generation equality, charged to the heartbeat category on the
// invocation's meter (it is liveness work, not paging work).
func (mp *Mapping) revalidate(meter *simtime.Meter) error {
	req := make([]byte, 40)
	binary.LittleEndian.PutUint64(req, uint64(mp.id))
	binary.LittleEndian.PutUint64(req[8:], uint64(mp.key))
	binary.LittleEndian.PutUint64(req[16:], mp.Start)
	binary.LittleEndian.PutUint64(req[24:], mp.End)
	binary.LittleEndian.PutUint64(req[32:], uint64(mp.consumer))
	resp, err := mp.k.callCat(meter, simtime.CatHeartbeat, mp.target, AuthEndpoint, req)
	if err != nil {
		mp.k.ProbeFailed(mp.target, err)
		if errors.Is(err, memsim.ErrMachineCrashed) && mp.mode == PagingRDMA && len(mp.backups) > 0 {
			return mp.failover(meter)
		}
		return err
	}
	if len(resp) < 14 {
		return fmt.Errorf("kernel: bad auth response")
	}
	gen := binary.LittleEndian.Uint64(resp[4:])
	if gen != mp.gen {
		return fmt.Errorf("kernel: registration (%d,%d) on machine %d regenerated (gen %d, had %d): %w",
			mp.id, mp.key, mp.target, gen, mp.gen, ErrStaleGeneration)
	}
	mp.k.RenewLease(mp.target)
	return nil
}

// cacheable reports whether this mapping's pages go through the machine's
// remote page cache: only genuinely remote RDMA-paged mappings do. Local
// mappings read frames for free, and the RPC ablation must keep paying
// per-page RPCs (Fig 15).
func (mp *Mapping) cacheable() bool {
	return mp.k.pcache != nil && mp.target != mp.as.Machine().ID() && mp.mode == PagingRDMA
}

// fault resolves one page. Pages the producer never touched are zero-filled
// privately. Remote pages consult the machine's page cache first: a hit
// installs the cached frame CoW-shared (zero-copy; the first write breaks
// CoW). A miss fetches the page — coalescing a window of adjacent
// not-yet-present pages into one doorbell batch when the fault stream looks
// sequential — and inserts the fetched frames into the cache.
func (mp *Mapping) fault(as *memsim.AddressSpace, vaddr uint64, ft memsim.FaultType) error {
	meter := as.Meter()
	meter.Charge(simtime.CatFault, mp.k.cm.PageFault)
	if err := mp.ensureFresh(meter); err != nil {
		return err
	}
	vpn := memsim.PageOf(vaddr)
	rpfn, remote := mp.remotePT[vpn]
	if !remote {
		local := as.Machine().AllocFrame()
		as.InstallPTE(vpn, memsim.PTE{PFN: local, Flags: memsim.FlagPresent | memsim.FlagWritable})
		return nil
	}
	useCache := mp.cacheable()
	if useCache {
		if frame, ok := mp.k.pcache.Lookup(mp.target, rpfn, mp.gen); ok {
			meter.Charge(simtime.CatCache, mp.k.cm.CacheHitInstall)
			// A hit at the predicted address keeps the sequential stream
			// (and its window) alive without fetching anything.
			if vpn == mp.raNext {
				mp.raNext = vpn + 1
			}
			as.InstallShared(vpn, frame)
			return nil
		}
	}

	if mp.target != as.Machine().ID() && mp.mode == PagingRDMA && mp.k.raMax > 1 {
		if vpn == mp.raNext && mp.raWindow >= 1 {
			mp.raWindow *= 2
		} else {
			mp.raWindow = 1
		}
		if mp.raWindow > mp.k.raMax {
			mp.raWindow = mp.k.raMax
		}
		window := mp.collectWindow(vpn, mp.raWindow, useCache)
		mp.raNext = window[len(window)-1] + 1
		if len(window) > 1 {
			return mp.fetchBatch(meter, as, window, useCache)
		}
	}
	return mp.fetchSingle(meter, as, vpn, rpfn, useCache)
}

// collectWindow returns the contiguous run of fetchable pages starting at
// vpn (known remote, not present, not cached), at most max long. The run
// stops at the first ineligible page, matching the next demand fault a
// sequential scan would take. The returned slice is the mapping's
// preallocated window scratch, valid until the next fault.
func (mp *Mapping) collectWindow(vpn memsim.VPN, max int, useCache bool) []memsim.VPN {
	if cap(mp.winBuf) < max {
		mp.winBuf = make([]memsim.VPN, 0, max)
	}
	window := append(mp.winBuf[:0], vpn)
	for next := vpn + 1; len(window) < max && next.Base() < mp.End; next++ {
		rpfn, ok := mp.remotePT[next]
		if !ok {
			break
		}
		if pte, ok := mp.as.Lookup(next); ok && pte.Present() {
			break
		}
		if useCache && mp.k.pcache.Contains(mp.target, rpfn, mp.gen) {
			break
		}
		window = append(window, next)
	}
	mp.winBuf = window
	return window
}

// fetchSingle resolves one remote page with a single fabric read landing
// directly in the destination frame (no staging buffer, no copy), failing
// over to a replica and retrying once if the read target crashed.
func (mp *Mapping) fetchSingle(meter *simtime.Meter, as *memsim.AddressSpace, vpn memsim.VPN, rpfn memsim.PFN, useCache bool) error {
	mach := as.Machine()
	local := mach.AllocFrameUnzeroed()
	buf := mach.BorrowFrame(local)
	err := mp.readRemote(meter, vpn, buf)
	if err != nil && mp.tryFailover(meter, err) {
		err = mp.readRemote(meter, vpn, buf)
	}
	if err != nil {
		mach.Unref(local)
		mp.dropCrashed(err)
		return err
	}
	mach.SealFrame(local)
	mp.install(meter, as, vpn, rpfn, local, useCache)
	return nil
}

// fetchBatch resolves the demand page plus readahead window in one
// doorbell-batched read, charged to the readahead category. The batch
// reads land directly in the freshly allocated frames, and the installs
// run batched too: one shard-ordered cache admission (InsertBatch) and one
// shard-ordered reference sweep (InstallSharedBatch) per window, instead
// of per-page lock round-trips.
func (mp *Mapping) fetchBatch(meter *simtime.Meter, as *memsim.AddressSpace, window []memsim.VPN, useCache bool) error {
	mach := as.Machine()
	mp.ensureScratch(len(window))
	for _, vpn := range window {
		local := mach.AllocFrameUnzeroed()
		mp.locals = append(mp.locals, local)
		mp.rpfns = append(mp.rpfns, mp.remotePT[vpn])
		mp.reqs = append(mp.reqs, rdma.PageRead{PFN: mp.physPFN(vpn), Buf: mach.BorrowFrame(local)})
	}
	err := mp.readPages(meter, simtime.CatReadahead, mp.reqs)
	if err != nil && mp.tryFailover(meter, err) {
		// Failover re-points reads at a backup's frames; the destination
		// buffers stay the same.
		for i, vpn := range window {
			mp.reqs[i].PFN = mp.physPFN(vpn)
		}
		err = mp.readPages(meter, simtime.CatReadahead, mp.reqs)
	}
	if err != nil {
		for _, pfn := range mp.locals {
			mach.Unref(pfn)
		}
		mp.dropCrashed(err)
		return err
	}
	mach.SealFrames(mp.locals)
	mp.k.addReadaheadPages(len(window) - 1)
	if !useCache {
		for i, vpn := range window {
			as.InstallPTE(vpn, memsim.PTE{PFN: mp.locals[i], Flags: memsim.FlagPresent | memsim.FlagWritable})
		}
		return nil
	}
	canon := mp.canon[:len(window)]
	mp.k.pcache.InsertBatch(mp.target, mp.gen, mp.rpfns, mp.locals, canon)
	as.InstallSharedBatch(window, canon)
	mp.k.pcache.TrimToBudget(meter, mp.k.cm)
	return nil
}

// install maps a freshly fetched frame: through the page cache it becomes a
// CoW-shared entry (the cache takes the fetch reference and may return an
// existing canonical frame); without the cache it stays a private writable
// copy — the original CoW coherency model.
func (mp *Mapping) install(meter *simtime.Meter, as *memsim.AddressSpace, vpn memsim.VPN, rpfn memsim.PFN, local memsim.PFN, useCache bool) {
	if !useCache {
		as.InstallPTE(vpn, memsim.PTE{PFN: local, Flags: memsim.FlagPresent | memsim.FlagWritable})
		return
	}
	canonical := mp.k.pcache.Insert(meter, mp.k.cm, mp.target, rpfn, mp.gen, local)
	as.InstallShared(vpn, canonical)
}

// dropCrashed invalidates the producer machine's cache entries when a read
// failed because that machine crashed and no replica could take over — its
// frames are gone for good. After a successful failover the cached copies
// remain the authoritative bytes of the dead producer's registration
// (generation fencing keeps them honest), so they are kept.
func (mp *Mapping) dropCrashed(err error) {
	if mp.failedOver {
		return
	}
	if mp.k.pcache != nil && errors.Is(err, memsim.ErrMachineCrashed) {
		mp.k.pcache.InvalidateMachine(mp.target)
	}
}

func (mp *Mapping) readPages(meter *simtime.Meter, cat simtime.Category, reqs []rdma.PageRead) error {
	if rp, ok := mp.k.transport.(readPagesCatTransport); ok {
		return rp.ReadPagesCat(meter, cat, mp.readTarget, reqs)
	}
	return mp.k.transport.ReadPages(meter, mp.readTarget, reqs)
}

func (mp *Mapping) readRemote(meter *simtime.Meter, vpn memsim.VPN, buf []byte) error {
	switch mp.mode {
	case PagingRPC:
		req := make([]byte, 8)
		binary.LittleEndian.PutUint64(req, uint64(mp.remotePT[vpn]))
		resp, err := mp.k.callCat(meter, simtime.CatFault, mp.target, PageEndpoint, req)
		if err != nil {
			return err
		}
		copy(buf, resp)
		return nil
	default:
		return mp.k.transport.Read(meter, mp.readTarget, mp.physPFN(vpn), 0, buf)
	}
}

// Prefetch reads the given pages in one doorbell-batched request and
// installs them, so later accesses hit locally with no fault (§4.4). Pages
// outside the mapping or already present are skipped; unknown remote pages
// are zero-filled without network cost. With the page cache enabled,
// already-cached pages install CoW-shared without refetching, and fetched
// pages are inserted for co-located consumers.
func (mp *Mapping) Prefetch(vpns []memsim.VPN) error {
	meter := mp.as.Meter()
	if err := mp.ensureFresh(meter); err != nil {
		return err
	}
	useCache := mp.cacheable()
	mach := mp.as.Machine()
	type slot struct {
		vpn  memsim.VPN
		pfn  memsim.PFN // local destination
		rpfn memsim.PFN
	}
	var slots []slot
	var reqs []rdma.PageRead
	for _, vpn := range vpns {
		base := vpn.Base()
		if base < mp.Start || base >= mp.End {
			continue
		}
		if pte, ok := mp.as.Lookup(vpn); ok && pte.Present() {
			continue
		}
		rpfn, ok := mp.remotePT[vpn]
		if !ok {
			local := mach.AllocFrame()
			mp.as.InstallPTE(vpn, memsim.PTE{PFN: local, Flags: memsim.FlagPresent | memsim.FlagWritable})
			continue
		}
		if useCache {
			if frame, hit := mp.k.pcache.Lookup(mp.target, rpfn, mp.gen); hit {
				meter.Charge(simtime.CatCache, mp.k.cm.CacheHitInstall)
				mp.as.InstallShared(vpn, frame)
				continue
			}
		}
		local := mach.AllocFrameUnzeroed()
		slots = append(slots, slot{vpn, local, rpfn})
		reqs = append(reqs, rdma.PageRead{PFN: mp.physPFN(vpn), Buf: mach.BorrowFrame(local)})
	}
	if len(slots) == 0 {
		return nil
	}
	err := mp.k.transport.ReadPages(meter, mp.readTarget, reqs)
	if err != nil && mp.tryFailover(meter, err) {
		for i, s := range slots {
			reqs[i].PFN = mp.physPFN(s.vpn)
		}
		err = mp.k.transport.ReadPages(meter, mp.readTarget, reqs)
	}
	if err != nil {
		for _, s := range slots {
			mach.Unref(s.pfn)
		}
		mp.dropCrashed(err)
		return err
	}
	for _, s := range slots {
		mach.SealFrame(s.pfn)
		mp.install(meter, mp.as, s.vpn, s.rpfn, s.pfn, useCache)
	}
	return nil
}

// PrefetchRange prefetches every page of [start, end) within the mapping.
func (mp *Mapping) PrefetchRange(start, end uint64) error {
	var vpns []memsim.VPN
	for vpn := memsim.PageOf(start); vpn.Base() < end; vpn++ {
		vpns = append(vpns, vpn)
	}
	return mp.Prefetch(vpns)
}

// Unmap tears the mapping down, releasing the consumer-side frames. It is
// what the hybrid GC calls when the remote root dies (§4.3).
func (mp *Mapping) Unmap() error {
	if mp.unmapped {
		return nil
	}
	mp.unmapped = true
	return mp.as.Unmap(mp.Start, mp.End)
}

// Target returns the logical producer machine (unchanged by failover).
func (mp *Mapping) Target() memsim.MachineID { return mp.target }

// ReadTarget returns the machine fabric reads currently go to: a backup
// after a failover, the producer otherwise.
func (mp *Mapping) ReadTarget() memsim.MachineID { return mp.readTarget }

// FailedOver reports whether the mapping was re-pointed at a replica.
func (mp *Mapping) FailedOver() bool { return mp.failedOver }

// RemotePages reports how many remote pages the mapping knows about.
func (mp *Mapping) RemotePages() int { return len(mp.remotePT) }

// Generation returns the producer registration's generation.
func (mp *Mapping) Generation() uint64 { return mp.gen }
