package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"rmmap/internal/memsim"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

// PagingMode selects how the consumer fetches remote pages on fault.
type PagingMode int

const (
	// PagingRDMA reads pages with one-sided RDMA (the design point).
	PagingRDMA PagingMode = iota
	// PagingRPC fetches pages with RPCs to the producer kernel — the
	// Fig 15 ablation showing why the RDMA co-design is necessary
	// (the paper reports a 62.2% slowdown without it).
	PagingRPC
)

// pageBufPool recycles page-sized staging buffers used between the fabric
// read and WriteFrame, so the fault hot path stops allocating 4 KB per
// page (real wall-clock GC churn in benches and chaos stress runs).
var pageBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, memsim.PageSize)
		return &b
	},
}

func getPageBuf() *[]byte  { return pageBufPool.Get().(*[]byte) }
func putPageBuf(b *[]byte) { pageBufPool.Put(b) }

// readPagesCatTransport is the optional interface for category-attributed
// doorbell batches (rdma.NIC.ReadPagesCat); readahead batches fall back to
// plain ReadPages (CatFault) on transports that lack it.
type readPagesCatTransport interface {
	ReadPagesCat(m *simtime.Meter, cat simtime.Category, target memsim.MachineID, reqs []rdma.PageRead) error
}

// Mapping is a live rmap: the producer's [Start, End) mapped into a
// consumer address space.
type Mapping struct {
	k        *Kernel
	as       *memsim.AddressSpace
	target   memsim.MachineID
	Start    uint64
	End      uint64
	remotePT map[memsim.VPN]memsim.PFN
	mode     PagingMode
	unmapped bool

	// gen is the producer registration's generation, keying page-cache
	// entries for this mapping's pages.
	gen uint64

	// Adaptive readahead state: raWindow is the current window in pages
	// (doubled on sequential faults, reset to 1 on a stride break, capped
	// at Kernel.raMax); raNext is the predicted next sequential fault.
	raWindow int
	raNext   memsim.VPN
}

// Rmap implements rmap(mac_addr, id, key, vm_start, vm_end) for consumer
// address space as: it issues the auth/page-table RPC to the producer's
// kernel (charged to the map category), then installs a remote-backed VMA.
// It fails if the range conflicts with an existing mapping — the error the
// address-space plan exists to prevent.
func (k *Kernel) Rmap(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64) (*Mapping, error) {
	return k.RmapMode(as, mac, id, key, start, end, PagingRDMA)
}

// RmapMode is Rmap with an explicit paging mode (ablations only).
func (k *Kernel) RmapMode(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64, mode PagingMode) (*Mapping, error) {
	return k.RmapAs(as, mac, id, key, start, end, 0, mode)
}

// RmapAs is RmapMode with an explicit consumer identity, validated against
// the registration's ACL (connection-based permission control, §4.1).
// Consumer 0 is anonymous and passes only ACL-free registrations.
func (k *Kernel) RmapAs(as *memsim.AddressSpace, mac memsim.MachineID, id FuncID, key Key, start, end uint64, consumer FuncID, mode PagingMode) (*Mapping, error) {
	if as.Machine() != k.machine {
		return nil, fmt.Errorf("kernel: address space not on machine %d", k.machine.ID())
	}
	meter := as.Meter()

	// Auth RPC, piggybacking the page-table fetch (§4.1 Fig 8 step 2).
	req := make([]byte, 40)
	binary.LittleEndian.PutUint64(req, uint64(id))
	binary.LittleEndian.PutUint64(req[8:], uint64(key))
	binary.LittleEndian.PutUint64(req[16:], start)
	binary.LittleEndian.PutUint64(req[24:], end)
	binary.LittleEndian.PutUint64(req[32:], uint64(consumer))
	resp, err := k.transport.Call(meter, mac, AuthEndpoint, req)
	if err != nil {
		return nil, err
	}
	if len(resp) < 12 {
		return nil, fmt.Errorf("kernel: bad auth response")
	}
	count := int(binary.LittleEndian.Uint32(resp))
	gen := binary.LittleEndian.Uint64(resp[4:])
	if len(resp) != 12+16*count {
		return nil, fmt.Errorf("kernel: bad auth response length")
	}
	pt := make(map[memsim.VPN]memsim.PFN, count)
	for i := 0; i < count; i++ {
		vpn := memsim.VPN(binary.LittleEndian.Uint64(resp[12+i*16:]))
		pfn := memsim.PFN(binary.LittleEndian.Uint64(resp[12+i*16+8:]))
		pt[vpn] = pfn
	}

	mp := &Mapping{k: k, as: as, target: mac, Start: start, End: end, remotePT: pt, mode: mode, gen: gen}
	vma := &memsim.VMA{
		Start: start, End: end, Kind: memsim.SegRmap, Writable: true,
		Fault: mp.fault,
	}
	if err := as.AddVMA(vma); err != nil {
		return nil, err
	}
	meter.Charge(simtime.CatMap, k.cm.VMACreate)
	return mp, nil
}

// cacheable reports whether this mapping's pages go through the machine's
// remote page cache: only genuinely remote RDMA-paged mappings do. Local
// mappings read frames for free, and the RPC ablation must keep paying
// per-page RPCs (Fig 15).
func (mp *Mapping) cacheable() bool {
	return mp.k.pcache != nil && mp.target != mp.as.Machine().ID() && mp.mode == PagingRDMA
}

// fault resolves one page. Pages the producer never touched are zero-filled
// privately. Remote pages consult the machine's page cache first: a hit
// installs the cached frame CoW-shared (zero-copy; the first write breaks
// CoW). A miss fetches the page — coalescing a window of adjacent
// not-yet-present pages into one doorbell batch when the fault stream looks
// sequential — and inserts the fetched frames into the cache.
func (mp *Mapping) fault(as *memsim.AddressSpace, vaddr uint64, ft memsim.FaultType) error {
	meter := as.Meter()
	meter.Charge(simtime.CatFault, mp.k.cm.PageFault)
	vpn := memsim.PageOf(vaddr)
	rpfn, remote := mp.remotePT[vpn]
	if !remote {
		local := as.Machine().AllocFrame()
		as.InstallPTE(vpn, memsim.PTE{PFN: local, Flags: memsim.FlagPresent | memsim.FlagWritable})
		return nil
	}
	useCache := mp.cacheable()
	if useCache {
		if frame, ok := mp.k.pcache.Lookup(mp.target, rpfn, mp.gen); ok {
			meter.Charge(simtime.CatCache, mp.k.cm.CacheHitInstall)
			// A hit at the predicted address keeps the sequential stream
			// (and its window) alive without fetching anything.
			if vpn == mp.raNext {
				mp.raNext = vpn + 1
			}
			as.InstallShared(vpn, frame)
			return nil
		}
	}

	window := []memsim.VPN{vpn}
	if mp.target != as.Machine().ID() && mp.mode == PagingRDMA && mp.k.raMax > 1 {
		if vpn == mp.raNext && mp.raWindow >= 1 {
			mp.raWindow *= 2
		} else {
			mp.raWindow = 1
		}
		if mp.raWindow > mp.k.raMax {
			mp.raWindow = mp.k.raMax
		}
		window = mp.collectWindow(vpn, mp.raWindow, useCache)
		mp.raNext = window[len(window)-1] + 1
	}
	if len(window) == 1 {
		return mp.fetchSingle(meter, as, vpn, rpfn, useCache)
	}
	return mp.fetchBatch(meter, as, window, useCache)
}

// collectWindow returns the contiguous run of fetchable pages starting at
// vpn (known remote, not present, not cached), at most max long. The run
// stops at the first ineligible page, matching the next demand fault a
// sequential scan would take.
func (mp *Mapping) collectWindow(vpn memsim.VPN, max int, useCache bool) []memsim.VPN {
	window := []memsim.VPN{vpn}
	for next := vpn + 1; len(window) < max && next.Base() < mp.End; next++ {
		rpfn, ok := mp.remotePT[next]
		if !ok {
			break
		}
		if pte, ok := mp.as.Lookup(next); ok && pte.Present() {
			break
		}
		if useCache && mp.k.pcache.Contains(mp.target, rpfn, mp.gen) {
			break
		}
		window = append(window, next)
	}
	return window
}

// fetchSingle resolves one remote page with a single fabric read.
func (mp *Mapping) fetchSingle(meter *simtime.Meter, as *memsim.AddressSpace, vpn memsim.VPN, rpfn memsim.PFN, useCache bool) error {
	local := as.Machine().AllocFrame()
	buf := getPageBuf()
	err := mp.readRemote(meter, rpfn, *buf)
	if err == nil {
		as.Machine().WriteFrame(local, 0, *buf)
	}
	putPageBuf(buf)
	if err != nil {
		as.Machine().Unref(local)
		mp.dropCrashed(err)
		return err
	}
	mp.install(meter, as, vpn, rpfn, local, useCache)
	return nil
}

// fetchBatch resolves the demand page plus readahead window in one
// doorbell-batched read, charged to the readahead category.
func (mp *Mapping) fetchBatch(meter *simtime.Meter, as *memsim.AddressSpace, window []memsim.VPN, useCache bool) error {
	mach := as.Machine()
	reqs := make([]rdma.PageRead, len(window))
	locals := make([]memsim.PFN, len(window))
	bufs := make([]*[]byte, len(window))
	for i, vpn := range window {
		locals[i] = mach.AllocFrame()
		bufs[i] = getPageBuf()
		reqs[i] = rdma.PageRead{PFN: mp.remotePT[vpn], Buf: *bufs[i]}
	}
	err := mp.readPages(meter, simtime.CatReadahead, reqs)
	if err == nil {
		for i := range window {
			mach.WriteFrame(locals[i], 0, *bufs[i])
		}
	}
	for _, b := range bufs {
		putPageBuf(b)
	}
	if err != nil {
		for _, pfn := range locals {
			mach.Unref(pfn)
		}
		mp.dropCrashed(err)
		return err
	}
	mp.k.addReadaheadPages(len(window) - 1)
	for i, vpn := range window {
		mp.install(meter, as, vpn, mp.remotePT[vpn], locals[i], useCache)
	}
	return nil
}

// install maps a freshly fetched frame: through the page cache it becomes a
// CoW-shared entry (the cache takes the fetch reference and may return an
// existing canonical frame); without the cache it stays a private writable
// copy — the original CoW coherency model.
func (mp *Mapping) install(meter *simtime.Meter, as *memsim.AddressSpace, vpn memsim.VPN, rpfn memsim.PFN, local memsim.PFN, useCache bool) {
	if !useCache {
		as.InstallPTE(vpn, memsim.PTE{PFN: local, Flags: memsim.FlagPresent | memsim.FlagWritable})
		return
	}
	canonical := mp.k.pcache.Insert(meter, mp.k.cm, mp.target, rpfn, mp.gen, local)
	as.InstallShared(vpn, canonical)
}

// dropCrashed invalidates the producer machine's cache entries when a read
// failed because that machine crashed — its frames are gone for good.
func (mp *Mapping) dropCrashed(err error) {
	if mp.k.pcache != nil && errors.Is(err, memsim.ErrMachineCrashed) {
		mp.k.pcache.InvalidateMachine(mp.target)
	}
}

func (mp *Mapping) readPages(meter *simtime.Meter, cat simtime.Category, reqs []rdma.PageRead) error {
	if rp, ok := mp.k.transport.(readPagesCatTransport); ok {
		return rp.ReadPagesCat(meter, cat, mp.target, reqs)
	}
	return mp.k.transport.ReadPages(meter, mp.target, reqs)
}

func (mp *Mapping) readRemote(meter *simtime.Meter, pfn memsim.PFN, buf []byte) error {
	switch mp.mode {
	case PagingRPC:
		req := make([]byte, 8)
		binary.LittleEndian.PutUint64(req, uint64(pfn))
		nic, ok := mp.k.transport.(interface {
			CallCat(*simtime.Meter, simtime.Category, memsim.MachineID, string, []byte) ([]byte, error)
		})
		var resp []byte
		var err error
		if ok {
			resp, err = nic.CallCat(meter, simtime.CatFault, mp.target, PageEndpoint, req)
		} else {
			resp, err = mp.k.transport.Call(meter, mp.target, PageEndpoint, req)
		}
		if err != nil {
			return err
		}
		copy(buf, resp)
		return nil
	default:
		return mp.k.transport.Read(meter, mp.target, pfn, 0, buf)
	}
}

// Prefetch reads the given pages in one doorbell-batched request and
// installs them, so later accesses hit locally with no fault (§4.4). Pages
// outside the mapping or already present are skipped; unknown remote pages
// are zero-filled without network cost. With the page cache enabled,
// already-cached pages install CoW-shared without refetching, and fetched
// pages are inserted for co-located consumers.
func (mp *Mapping) Prefetch(vpns []memsim.VPN) error {
	meter := mp.as.Meter()
	useCache := mp.cacheable()
	type slot struct {
		vpn  memsim.VPN
		pfn  memsim.PFN // local destination
		rpfn memsim.PFN
	}
	var reqs []rdma.PageRead
	var slots []slot
	var bufs []*[]byte
	for _, vpn := range vpns {
		base := vpn.Base()
		if base < mp.Start || base >= mp.End {
			continue
		}
		if pte, ok := mp.as.Lookup(vpn); ok && pte.Present() {
			continue
		}
		rpfn, ok := mp.remotePT[vpn]
		if !ok {
			local := mp.as.Machine().AllocFrame()
			mp.as.InstallPTE(vpn, memsim.PTE{PFN: local, Flags: memsim.FlagPresent | memsim.FlagWritable})
			continue
		}
		if useCache {
			if frame, hit := mp.k.pcache.Lookup(mp.target, rpfn, mp.gen); hit {
				meter.Charge(simtime.CatCache, mp.k.cm.CacheHitInstall)
				mp.as.InstallShared(vpn, frame)
				continue
			}
		}
		local := mp.as.Machine().AllocFrame()
		slots = append(slots, slot{vpn, local, rpfn})
		buf := getPageBuf()
		bufs = append(bufs, buf)
		reqs = append(reqs, rdma.PageRead{PFN: rpfn, Buf: *buf})
	}
	if len(reqs) == 0 {
		return nil
	}
	release := func() {
		for _, b := range bufs {
			putPageBuf(b)
		}
	}
	if err := mp.k.transport.ReadPages(meter, mp.target, reqs); err != nil {
		for _, s := range slots {
			mp.as.Machine().Unref(s.pfn)
		}
		release()
		mp.dropCrashed(err)
		return err
	}
	for i, s := range slots {
		mp.as.Machine().WriteFrame(s.pfn, 0, reqs[i].Buf)
		mp.install(meter, mp.as, s.vpn, s.rpfn, s.pfn, useCache)
	}
	release()
	return nil
}

// PrefetchRange prefetches every page of [start, end) within the mapping.
func (mp *Mapping) PrefetchRange(start, end uint64) error {
	var vpns []memsim.VPN
	for vpn := memsim.PageOf(start); vpn.Base() < end; vpn++ {
		vpns = append(vpns, vpn)
	}
	return mp.Prefetch(vpns)
}

// Unmap tears the mapping down, releasing the consumer-side frames. It is
// what the hybrid GC calls when the remote root dies (§4.3).
func (mp *Mapping) Unmap() error {
	if mp.unmapped {
		return nil
	}
	mp.unmapped = true
	return mp.as.Unmap(mp.Start, mp.End)
}

// Target returns the producer machine.
func (mp *Mapping) Target() memsim.MachineID { return mp.target }

// RemotePages reports how many remote pages the mapping knows about.
func (mp *Mapping) RemotePages() int { return len(mp.remotePT) }

// Generation returns the producer registration's generation.
func (mp *Mapping) Generation() uint64 { return mp.gen }
