package kernel

import (
	"errors"
	"testing"
)

// Per-shard coordinator epochs (DESIGN.md §15): a shard recovery bumps
// only that shard's epoch on kernels, so fencing is shard-local.

func TestShardEpochsIndependent(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[0]

	k.AdoptShardEpoch(2, 5)
	if got := k.CtrlShardEpoch(2); got != 5 {
		t.Fatalf("shard 2 epoch = %d, want 5", got)
	}
	if got := k.CtrlShardEpoch(0); got != 0 {
		t.Fatalf("adopting shard 2's epoch moved shard 0's to %d", got)
	}
	if got := k.CtrlShardEpoch(1); got != 0 {
		t.Fatalf("adopting shard 2's epoch moved shard 1's to %d", got)
	}

	// Monotone per shard, not across shards.
	k.AdoptShardEpoch(2, 3)
	if got := k.CtrlShardEpoch(2); got != 5 {
		t.Fatalf("shard 2 epoch lowered to %d", got)
	}
	k.AdoptShardEpoch(0, 1)
	if got := k.CtrlShardEpoch(2); got != 5 {
		t.Fatalf("shard 0 adoption disturbed shard 2: %d", got)
	}

	// The legacy API is the shard-0 view.
	if k.CtrlEpoch() != 1 {
		t.Fatalf("CtrlEpoch = %d, want shard 0's 1", k.CtrlEpoch())
	}
}

func TestShardEpochFencingIsShardLocal(t *testing.T) {
	c := newCluster(t, 1)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x102000, []byte("shard-fence"))
	k := c.kernels[0]

	// Shard 1 recovered into epoch 2; shard 0 still runs epoch 1.
	k.AdoptShardEpoch(0, 1)
	k.AdoptShardEpoch(1, 2)

	// A zombie shard-1 coordinator (epoch 1) is fenced...
	err := k.DeregisterMemFencedShard(1, 1, meta.ID, meta.Key)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale shard-1 reclaim: %v, want ErrStaleEpoch", err)
	}
	if k.Registrations() != 1 {
		t.Fatal("stale shard-1 reclaim destroyed a live registration")
	}
	// ...while shard 0 at its own epoch 1 reclaims normally — another
	// shard's bumped epoch never fences this shard's commands.
	if err := k.DeregisterMemFencedShard(0, 1, meta.ID, meta.Key); err != nil {
		t.Fatalf("current-epoch shard-0 reclaim: %v", err)
	}
	if k.Registrations() != 0 {
		t.Fatalf("registrations = %d, want 0", k.Registrations())
	}

	// A newer-epoch command is an implicit announcement for its shard only.
	_, meta2 := producerSetup(t, c, 0, 0x200000, 0x201000, []byte("again"))
	if err := k.DeregisterMemFencedShard(3, 7, meta2.ID, meta2.Key); err != nil {
		t.Fatalf("newer-epoch shard-3 reclaim: %v", err)
	}
	if got := k.CtrlShardEpoch(3); got != 7 {
		t.Fatalf("shard 3 epoch = %d after epoch-7 command, want 7", got)
	}
	if got := k.CtrlShardEpoch(0); got != 1 {
		t.Fatalf("shard 3's announcement moved shard 0's epoch to %d", got)
	}
}
