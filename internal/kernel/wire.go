package kernel

// Pure wire decoders for the kernel's RPC replies. Factored out of the
// call sites so they can be fuzzed directly: both run on bytes that crossed
// a (possibly real TCP) fabric, so they must reject any malformed input
// with an error rather than panic or over-allocate.

import (
	"encoding/binary"
	"fmt"

	"rmmap/internal/memsim"
)

// authResponse is the decoded reply of AuthEndpoint: the registration
// generation, the producer's authoritative backup list, and the snapshot
// page table for the requested range.
type authResponse struct {
	gen     uint64
	backups []memsim.MachineID
	pages   map[memsim.VPN]memsim.PFN
}

// parseAuthResponse decodes an AuthEndpoint reply:
//
//	count u32 | gen u64 | nback u16 | nback×(backup u64) | count×(vpn u64, pfn u64)
func parseAuthResponse(resp []byte) (authResponse, error) {
	if len(resp) < 14 {
		return authResponse{}, fmt.Errorf("kernel: bad auth response")
	}
	count := int(binary.LittleEndian.Uint32(resp))
	gen := binary.LittleEndian.Uint64(resp[4:])
	nback := int(binary.LittleEndian.Uint16(resp[12:]))
	hdr := 14 + 8*nback
	if len(resp) != hdr+16*count {
		return authResponse{}, fmt.Errorf("kernel: bad auth response length")
	}
	ar := authResponse{gen: gen}
	if nback > 0 {
		ar.backups = make([]memsim.MachineID, nback)
		for i := 0; i < nback; i++ {
			ar.backups[i] = memsim.MachineID(binary.LittleEndian.Uint64(resp[14+8*i:]))
		}
	}
	ar.pages = make(map[memsim.VPN]memsim.PFN, count)
	for i := 0; i < count; i++ {
		vpn := memsim.VPN(binary.LittleEndian.Uint64(resp[hdr+i*16:]))
		pfn := memsim.PFN(binary.LittleEndian.Uint64(resp[hdr+i*16+8:]))
		ar.pages[vpn] = pfn
	}
	return ar, nil
}

// replicaAuthResponse is the decoded reply of ReplicaEndpoint: the replica
// generation, whether replication had caught up to the registration's
// watermark, and the logical (producer PFN) and physical (backup PFN) page
// tables.
type replicaAuthResponse struct {
	gen      uint64
	complete bool
	logical  map[memsim.VPN]memsim.PFN
	phys     map[memsim.VPN]memsim.PFN
}

// parseReplicaAuthResponse decodes a ReplicaEndpoint reply:
//
//	gen u64 | complete u8 | count u32 | count×(vpn u64, producer pfn u64, backup pfn u64)
func parseReplicaAuthResponse(resp []byte) (replicaAuthResponse, error) {
	if len(resp) < 13 {
		return replicaAuthResponse{}, fmt.Errorf("kernel: bad replica auth response")
	}
	gen := binary.LittleEndian.Uint64(resp)
	complete := resp[8] == 1
	count := int(binary.LittleEndian.Uint32(resp[9:]))
	if len(resp) != 13+24*count {
		return replicaAuthResponse{}, fmt.Errorf("kernel: bad replica auth response length")
	}
	ra := replicaAuthResponse{
		gen: gen, complete: complete,
		logical: make(map[memsim.VPN]memsim.PFN, count),
		phys:    make(map[memsim.VPN]memsim.PFN, count),
	}
	for i := 0; i < count; i++ {
		vpn := memsim.VPN(binary.LittleEndian.Uint64(resp[13+24*i:]))
		ra.logical[vpn] = memsim.PFN(binary.LittleEndian.Uint64(resp[13+24*i+8:]))
		ra.phys[vpn] = memsim.PFN(binary.LittleEndian.Uint64(resp[13+24*i+16:]))
	}
	return ra, nil
}
