package kernel

import (
	"encoding/binary"
	"fmt"
	"sort"

	"rmmap/internal/memsim"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

// Async state replication (§6 fault tolerance extension).
//
// When replication is enabled, every register_mem schedules a background
// job that copies the registration's shadow frames to the kernel's backup
// machines: one prepare RPC allocates backup frames and records a replica
// entry, then batches of one-sided doorbell writes push the page bytes
// (bypassing the backup CPU, like reads), each followed by a small commit
// RPC that advances the backup's watermark — one-sided writes are
// invisible to the backup's kernel, so progress must be told, not seen.
// All charges go to CatReplicate on a background meter: replication rides
// behind the producer's invocation in virtual time, off its critical path.
//
// The watermark makes partial replication detectable: failover (see
// mapping.go) is refused unless done == total, falling back to the
// platform's re-execution rung. A producer crash mid-replication simply
// stops the job — the stuck watermark is the refusal.

// replBatchPages is how many pages one push batch carries.
const replBatchPages = 64

type replicaKey struct {
	origin memsim.MachineID
	id     FuncID
	key    Key
}

type replicaPage struct {
	vpn     memsim.VPN
	prodPFN memsim.PFN // producer frame: the logical identity (cache keys)
	local   memsim.PFN // backup frame holding the copy
}

// replicaEntry is one registration this machine backs up for a peer.
type replicaEntry struct {
	start, end uint64
	gen        uint64
	total      int
	done       int // replication watermark, in pages
	pages      []replicaPage
}

// replPage is a producer-side (vpn, pfn) pair, sorted by vpn so the push
// order — and therefore the whole virtual-time schedule — is
// deterministic despite map iteration.
type replPage struct {
	vpn memsim.VPN
	pfn memsim.PFN
}

type replTarget struct {
	mac    memsim.MachineID
	locals []memsim.PFN // backup frames aligned with the job's pages
	failed bool
}

type replJob struct {
	id         FuncID
	key        Key
	gen        uint64
	start, end uint64
	pages      []replPage
	targets    []*replTarget
	next       int // pages pushed so far
}

// EnableReplication configures this kernel to asynchronously replicate
// every registration to backups; sched schedules deferred virtual-time
// work (the platform wires Sim.After). Empty backups or a nil sched
// disables replication.
func (k *Kernel) EnableReplication(backups []memsim.MachineID, sched func(d simtime.Duration, fn func())) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.replBackups = append([]memsim.MachineID(nil), backups...)
	k.replSched = sched
	if k.replMeter == nil {
		k.replMeter = simtime.NewMeter()
	}
	if k.replicas == nil {
		k.replicas = make(map[replicaKey]*replicaEntry)
	}
}

// ReplicationMeter exposes the background meter replication charges
// (CatReplicate); nil until replication is enabled.
func (k *Kernel) ReplicationMeter() *simtime.Meter { return k.replMeter }

// ReplicatedBytes counts page bytes this kernel pushed to backups.
func (k *Kernel) ReplicatedBytes() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.replicatedBytes
}

// ReplicaWatermark reports the replication progress this machine holds
// for a peer registration (backup role); ok is false without an entry.
func (k *Kernel) ReplicaWatermark(origin memsim.MachineID, id FuncID, key Key) (done, total int, ok bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.replicas[replicaKey{origin, id, key}]
	if !ok {
		return 0, 0, false
	}
	return e.done, e.total, true
}

// scheduleReplicationLocked kicks off the async replication job for a
// fresh registration. Caller holds k.mu.
func (k *Kernel) scheduleReplicationLocked(rk regKey, e *regEntry) {
	if len(e.backups) == 0 || k.replSched == nil || len(e.snapshot) == 0 {
		return
	}
	pages := make([]replPage, 0, len(e.snapshot))
	for vpn, pfn := range e.snapshot {
		pages = append(pages, replPage{vpn, pfn})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].vpn < pages[j].vpn })
	job := &replJob{
		id: rk.id, key: rk.key, gen: e.gen,
		start: e.start, end: e.end, pages: pages,
	}
	for _, b := range e.backups {
		job.targets = append(job.targets, &replTarget{mac: b})
	}
	k.replSched(0, func() { k.replPrepare(job) })
}

// jobLive re-checks that the registration the job copies still exists at
// the same generation: deregistration frees the shadow frames, and
// re-registration supersedes the job with a fresh one.
func (k *Kernel) jobLive(job *replJob) bool {
	if k.machine.Crashed() {
		return false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.regs[regKey{job.id, job.key}]
	return ok && e.gen == job.gen
}

// replPrepare sends the prepare RPC to every backup, then schedules the
// first push batch after the virtual time the prepares took.
func (k *Kernel) replPrepare(job *replJob) {
	if !k.jobLive(job) {
		return
	}
	m := k.replMeter
	before := m.Total()
	req := make([]byte, 52+16*len(job.pages))
	binary.LittleEndian.PutUint64(req, uint64(k.machine.ID()))
	binary.LittleEndian.PutUint64(req[8:], uint64(job.id))
	binary.LittleEndian.PutUint64(req[16:], uint64(job.key))
	binary.LittleEndian.PutUint64(req[24:], job.gen)
	binary.LittleEndian.PutUint64(req[32:], job.start)
	binary.LittleEndian.PutUint64(req[40:], job.end)
	binary.LittleEndian.PutUint32(req[48:], uint32(len(job.pages)))
	for i, p := range job.pages {
		binary.LittleEndian.PutUint64(req[52+16*i:], uint64(p.vpn))
		binary.LittleEndian.PutUint64(req[52+16*i+8:], uint64(p.pfn))
	}
	live := false
	for _, t := range job.targets {
		resp, err := k.callCat(m, simtime.CatReplicate, t.mac, ReplPrepareEndpoint, req)
		if err != nil || len(resp) != 8*len(job.pages) {
			t.failed = true
			continue
		}
		t.locals = make([]memsim.PFN, len(job.pages))
		for i := range t.locals {
			t.locals[i] = memsim.PFN(binary.LittleEndian.Uint64(resp[8*i:]))
		}
		live = true
	}
	if !live {
		return
	}
	k.replSched(m.Total()-before, func() { k.replStep(job) })
}

// replStep pushes one batch of pages to every live backup and commits the
// new watermark, then schedules the next batch after this one's virtual
// duration.
func (k *Kernel) replStep(job *replJob) {
	if !k.jobLive(job) {
		return
	}
	m := k.replMeter
	before := m.Total()
	lo := job.next
	hi := lo + replBatchPages
	if hi > len(job.pages) {
		hi = len(job.pages)
	}
	bufs := make([]*[]byte, hi-lo)
	for i := lo; i < hi; i++ {
		bufs[i-lo] = getPageBuf()
		k.machine.ReadFrame(job.pages[i].pfn, 0, *bufs[i-lo])
	}
	commit := make([]byte, 28)
	binary.LittleEndian.PutUint64(commit, uint64(k.machine.ID()))
	binary.LittleEndian.PutUint64(commit[8:], uint64(job.id))
	binary.LittleEndian.PutUint64(commit[16:], uint64(job.key))
	binary.LittleEndian.PutUint32(commit[24:], uint32(hi))
	live := false
	for _, t := range job.targets {
		if t.failed {
			continue
		}
		reqs := make([]rdma.PageWrite, hi-lo)
		for i := lo; i < hi; i++ {
			reqs[i-lo] = rdma.PageWrite{PFN: t.locals[i], Data: *bufs[i-lo]}
		}
		if err := k.writePagesCat(m, simtime.CatReplicate, t.mac, reqs); err != nil {
			t.failed = true
			continue
		}
		if _, err := k.callCat(m, simtime.CatReplicate, t.mac, ReplCommitEndpoint, commit); err != nil {
			t.failed = true
			continue
		}
		k.mu.Lock()
		k.replicatedBytes += int64((hi - lo) * memsim.PageSize)
		k.mu.Unlock()
		live = true
	}
	for _, b := range bufs {
		putPageBuf(b)
	}
	job.next = hi
	if live && job.next < len(job.pages) {
		k.replSched(m.Total()-before, func() { k.replStep(job) })
	}
}

// scheduleReplicaDrop asynchronously frees the replicas of a deregistered
// registration on its backups (best-effort: a dead backup keeps nothing
// anyone can reach).
func (k *Kernel) scheduleReplicaDrop(id FuncID, key Key, backups []memsim.MachineID) {
	if len(backups) == 0 || k.replSched == nil {
		return
	}
	k.replSched(0, func() {
		if k.machine.Crashed() {
			return
		}
		req := make([]byte, 24)
		binary.LittleEndian.PutUint64(req, uint64(k.machine.ID()))
		binary.LittleEndian.PutUint64(req[8:], uint64(id))
		binary.LittleEndian.PutUint64(req[16:], uint64(key))
		for _, b := range backups {
			_, _ = k.callCat(k.replMeter, simtime.CatReplicate, b, ReplDropEndpoint, req)
		}
	})
}

func (k *Kernel) writePagesCat(m *simtime.Meter, cat simtime.Category, target memsim.MachineID, reqs []rdma.PageWrite) error {
	if wp, ok := k.transport.(interface {
		WritePagesCat(*simtime.Meter, simtime.Category, memsim.MachineID, []rdma.PageWrite) error
	}); ok {
		return wp.WritePagesCat(m, cat, target, reqs)
	}
	return k.transport.WritePages(m, target, reqs)
}

// --- Backup-side handlers ---

// prep request: origin u64 | id u64 | key u64 | gen u64 | start u64 |
// end u64 | count u32 | count × (vpn u64, prodPFN u64)
// prep response: count × (localPFN u64)
func (k *Kernel) handleReplPrepare(m *simtime.Meter, req []byte) ([]byte, error) {
	if len(req) < 52 {
		return nil, fmt.Errorf("kernel: bad replica prepare request")
	}
	origin := memsim.MachineID(binary.LittleEndian.Uint64(req))
	id := FuncID(binary.LittleEndian.Uint64(req[8:]))
	key := Key(binary.LittleEndian.Uint64(req[16:]))
	gen := binary.LittleEndian.Uint64(req[24:])
	start := binary.LittleEndian.Uint64(req[32:])
	end := binary.LittleEndian.Uint64(req[40:])
	count := int(binary.LittleEndian.Uint32(req[48:]))
	if len(req) != 52+16*count {
		return nil, fmt.Errorf("kernel: bad replica prepare length")
	}
	e := &replicaEntry{start: start, end: end, gen: gen, total: count,
		pages: make([]replicaPage, count)}
	resp := make([]byte, 8*count)
	for i := 0; i < count; i++ {
		vpn := memsim.VPN(binary.LittleEndian.Uint64(req[52+16*i:]))
		prod := memsim.PFN(binary.LittleEndian.Uint64(req[52+16*i+8:]))
		local := k.machine.AllocFrame()
		e.pages[i] = replicaPage{vpn: vpn, prodPFN: prod, local: local}
		binary.LittleEndian.PutUint64(resp[8*i:], uint64(local))
	}
	k.mu.Lock()
	if k.replicas == nil {
		k.replicas = make(map[replicaKey]*replicaEntry)
	}
	rk := replicaKey{origin, id, key}
	old := k.replicas[rk]
	k.replicas[rk] = e
	k.mu.Unlock()
	if old != nil {
		for _, p := range old.pages {
			k.machine.Unref(p.local)
		}
	}
	return resp, nil
}

// commit request: origin u64 | id u64 | key u64 | done u32
func (k *Kernel) handleReplCommit(m *simtime.Meter, req []byte) ([]byte, error) {
	if len(req) != 28 {
		return nil, fmt.Errorf("kernel: bad replica commit request")
	}
	origin := memsim.MachineID(binary.LittleEndian.Uint64(req))
	id := FuncID(binary.LittleEndian.Uint64(req[8:]))
	key := Key(binary.LittleEndian.Uint64(req[16:]))
	done := int(binary.LittleEndian.Uint32(req[24:]))
	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.replicas[replicaKey{origin, id, key}]
	if !ok {
		return nil, fmt.Errorf("%w: no replica for machine %d id %d", ErrNotRegistered, origin, id)
	}
	if done > e.total {
		done = e.total
	}
	if done > e.done {
		e.done = done
	}
	return []byte{1}, nil
}

// drop request: origin u64 | id u64 | key u64
func (k *Kernel) handleReplDrop(m *simtime.Meter, req []byte) ([]byte, error) {
	if len(req) != 24 {
		return nil, fmt.Errorf("kernel: bad replica drop request")
	}
	origin := memsim.MachineID(binary.LittleEndian.Uint64(req))
	id := FuncID(binary.LittleEndian.Uint64(req[8:]))
	key := Key(binary.LittleEndian.Uint64(req[16:]))
	k.mu.Lock()
	rk := replicaKey{origin, id, key}
	e := k.replicas[rk]
	delete(k.replicas, rk)
	k.mu.Unlock()
	if e != nil {
		for _, p := range e.pages {
			k.machine.Unref(p.local)
		}
	}
	return []byte{1}, nil
}

// replica auth request: origin u64 | id u64 | key u64 | consumer u64 |
// start u64 | end u64
// replica auth response: gen u64 | complete u8 | count u32 |
// count × (vpn u64, prodPFN u64, localPFN u64)
//
// Like the producer's auth RPC, possession of (id, key) is the
// credential; the producer's ACL is not replicated, so ACL-restricted
// registrations simply fence to re-execution if their producer dies.
func (k *Kernel) handleReplicaAuth(m *simtime.Meter, req []byte) ([]byte, error) {
	if len(req) != 48 {
		return nil, fmt.Errorf("kernel: bad replica auth request")
	}
	origin := memsim.MachineID(binary.LittleEndian.Uint64(req))
	id := FuncID(binary.LittleEndian.Uint64(req[8:]))
	key := Key(binary.LittleEndian.Uint64(req[16:]))
	start := binary.LittleEndian.Uint64(req[32:])
	end := binary.LittleEndian.Uint64(req[40:])
	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.replicas[replicaKey{origin, id, key}]
	if !ok {
		return nil, fmt.Errorf("%w: no replica for machine %d id %d", ErrAuth, origin, id)
	}
	if start < e.start || end > e.end {
		return nil, fmt.Errorf("%w: [%#x,%#x) not within [%#x,%#x)",
			ErrRangeOutside, start, end, e.start, e.end)
	}
	resp := make([]byte, 13, 13+24*len(e.pages))
	binary.LittleEndian.PutUint64(resp, e.gen)
	if e.done == e.total {
		resp[8] = 1
	}
	count := 0
	for _, p := range e.pages {
		if p.vpn.Base() >= start && p.vpn.Base() < end {
			var rec [24]byte
			binary.LittleEndian.PutUint64(rec[:], uint64(p.vpn))
			binary.LittleEndian.PutUint64(rec[8:], uint64(p.prodPFN))
			binary.LittleEndian.PutUint64(rec[16:], uint64(p.local))
			resp = append(resp, rec[:]...)
			count++
		}
	}
	binary.LittleEndian.PutUint32(resp[9:], uint32(count))
	return resp, nil
}

// replicaAuthCall queries backup b for origin's replica page table,
// returning the replica generation, completeness, and the logical
// (producer) and physical (backup) page tables for [start, end).
func (k *Kernel) replicaAuthCall(m *simtime.Meter, b, origin memsim.MachineID, id FuncID, key Key, start, end uint64, consumer FuncID) (gen uint64, complete bool, logical, phys map[memsim.VPN]memsim.PFN, err error) {
	req := make([]byte, 48)
	binary.LittleEndian.PutUint64(req, uint64(origin))
	binary.LittleEndian.PutUint64(req[8:], uint64(id))
	binary.LittleEndian.PutUint64(req[16:], uint64(key))
	binary.LittleEndian.PutUint64(req[24:], uint64(consumer))
	binary.LittleEndian.PutUint64(req[32:], start)
	binary.LittleEndian.PutUint64(req[40:], end)
	resp, err := k.callCat(m, simtime.CatMap, b, ReplicaEndpoint, req)
	if err != nil {
		return 0, false, nil, nil, err
	}
	ra, err := parseReplicaAuthResponse(resp)
	if err != nil {
		return 0, false, nil, nil, err
	}
	return ra.gen, ra.complete, ra.logical, ra.phys, nil
}
