package kernel

import (
	"errors"
	"testing"
)

func TestACLAllowsListedConsumer(t *testing.T) {
	c := newCluster(t, 2)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("guarded"))
	if err := c.kernels[0].SetACL(meta.ID, meta.Key, []FuncID{500}); err != nil {
		t.Fatal(err)
	}
	cons := c.newAS(1)
	mp, err := c.kernels[1].RmapAs(cons, meta.Machine, meta.ID, meta.Key,
		meta.Start, meta.End, 500, PagingRDMA)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Unmap()
	got := make([]byte, 7)
	if err := cons.Read(0x100000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "guarded" {
		t.Errorf("got %q", got)
	}
}

func TestACLDeniesUnlistedConsumer(t *testing.T) {
	c := newCluster(t, 2)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("guarded"))
	if err := c.kernels[0].SetACL(meta.ID, meta.Key, []FuncID{500}); err != nil {
		t.Fatal(err)
	}
	cons := c.newAS(1)
	// Wrong identity: denied even with the correct key.
	_, err := c.kernels[1].RmapAs(cons, meta.Machine, meta.ID, meta.Key,
		meta.Start, meta.End, 501, PagingRDMA)
	if err == nil {
		t.Fatal("unlisted consumer mapped guarded memory")
	}
	// Anonymous consumer likewise.
	if _, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key,
		meta.Start, meta.End); err == nil {
		t.Fatal("anonymous consumer mapped guarded memory")
	}
}

func TestACLEmptyAllowsAnyKeyHolder(t *testing.T) {
	c := newCluster(t, 2)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("open"))
	if err := c.kernels[0].SetACL(meta.ID, meta.Key, nil); err != nil {
		t.Fatal(err)
	}
	cons := c.newAS(1)
	mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatalf("open registration denied: %v", err)
	}
	defer mp.Unmap()
}

func TestACLUnknownRegistration(t *testing.T) {
	c := newCluster(t, 1)
	if err := c.kernels[0].SetACL(99, 99, []FuncID{1}); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("err = %v", err)
	}
}

func TestACLExtension(t *testing.T) {
	// Forwarding scenario: the coordinator widens the ACL mid-flight.
	c := newCluster(t, 3)
	_, meta := producerSetup(t, c, 0, 0x100000, 0x101000, []byte("chained"))
	if err := c.kernels[0].SetACL(meta.ID, meta.Key, []FuncID{10}); err != nil {
		t.Fatal(err)
	}
	cons := c.newAS(2)
	if _, err := c.kernels[2].RmapAs(cons, meta.Machine, meta.ID, meta.Key,
		meta.Start, meta.End, 20, PagingRDMA); err == nil {
		t.Fatal("consumer 20 mapped before ACL extension")
	}
	if err := c.kernels[0].SetACL(meta.ID, meta.Key, []FuncID{10, 20}); err != nil {
		t.Fatal(err)
	}
	mp, err := c.kernels[2].RmapAs(cons, meta.Machine, meta.ID, meta.Key,
		meta.Start, meta.End, 20, PagingRDMA)
	if err != nil {
		t.Fatalf("consumer 20 denied after extension: %v", err)
	}
	defer mp.Unmap()
}
