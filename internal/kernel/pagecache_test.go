package kernel

import (
	"bytes"
	"testing"

	"rmmap/internal/memsim"
	"rmmap/internal/simtime"
)

// enableCaches turns the page cache + readahead on for every kernel of the
// test cluster (the kernel-level default is off).
func (c *cluster) enableCaches(budget int64, raMax int) {
	for _, k := range c.kernels {
		k.EnablePageCache(budget)
		k.SetReadahead(raMax)
	}
}

func TestPageCacheLRUEviction(t *testing.T) {
	m := memsim.NewMachine(0)
	cm := simtime.DefaultCostModel()
	pc := NewPageCache(m, 2*memsim.PageSize)
	meter := simtime.NewMeter()

	frames := make([]memsim.PFN, 3)
	for i := range frames {
		frames[i] = m.AllocFrame()
		pc.Insert(meter, cm, 1, memsim.PFN(100+i), 0, frames[i])
	}
	if got := pc.Len(); got != 2 {
		t.Fatalf("cache holds %d pages, want 2 (budget)", got)
	}
	s := pc.Stats()
	if s.Evictions != 1 || s.LiveBytes != 2*memsim.PageSize {
		t.Fatalf("stats = %+v, want 1 eviction and 2 pages live", s)
	}
	// The oldest entry (pfn 100) was evicted and its frame freed.
	if _, ok := pc.Lookup(1, 100, 0); ok {
		t.Error("evicted page still cached")
	}
	if m.LiveFrames() != 2 {
		t.Errorf("machine holds %d frames, want 2", m.LiveFrames())
	}
	if meter.Get(simtime.CatCache) == 0 {
		t.Error("eviction charged nothing to CatCache")
	}
}

func TestPageCacheRecency(t *testing.T) {
	m := memsim.NewMachine(0)
	cm := simtime.DefaultCostModel()
	pc := NewPageCache(m, 2*memsim.PageSize)
	pc.Insert(nil, cm, 1, 100, 0, m.AllocFrame())
	pc.Insert(nil, cm, 1, 101, 0, m.AllocFrame())
	// Touch 100 so 101 becomes LRU, then overflow.
	if _, ok := pc.Lookup(1, 100, 0); !ok {
		t.Fatal("expected hit on pfn 100")
	}
	pc.Insert(nil, cm, 1, 102, 0, m.AllocFrame())
	if _, ok := pc.Lookup(1, 100, 0); !ok {
		t.Error("recently used page evicted")
	}
	if pc.Contains(1, 101, 0) {
		t.Error("LRU page survived over-budget insert")
	}
}

func TestPageCacheGenerationMismatch(t *testing.T) {
	m := memsim.NewMachine(0)
	pc := NewPageCache(m, 8*memsim.PageSize)
	pc.Insert(nil, simtime.DefaultCostModel(), 1, 100, 1, m.AllocFrame())
	if _, ok := pc.Lookup(1, 100, 2); ok {
		t.Error("hit across generations: a reused PFN would serve stale bytes")
	}
	if _, ok := pc.Lookup(1, 100, 1); !ok {
		t.Error("same-generation lookup missed")
	}
}

func TestPageCacheInvalidation(t *testing.T) {
	m := memsim.NewMachine(0)
	cm := simtime.DefaultCostModel()
	pc := NewPageCache(m, 64*memsim.PageSize)
	pc.Insert(nil, cm, 1, 100, 1, m.AllocFrame())
	pc.Insert(nil, cm, 1, 101, 2, m.AllocFrame())
	pc.Insert(nil, cm, 2, 100, 1, m.AllocFrame())

	pc.InvalidateBelow(1, 2) // drops (1,100,gen1) only
	if pc.Contains(1, 100, 1) || !pc.Contains(1, 101, 2) || !pc.Contains(2, 100, 1) {
		t.Fatalf("InvalidateBelow dropped the wrong entries (len=%d)", pc.Len())
	}
	pc.InvalidateMachine(2)
	if pc.Contains(2, 100, 1) {
		t.Error("InvalidateMachine left an entry")
	}
	if pc.MachineBytes(2) != 0 || pc.MachineBytes(1) != memsim.PageSize {
		t.Errorf("MachineBytes: m2=%d m1=%d", pc.MachineBytes(2), pc.MachineBytes(1))
	}
	// Invalidation released the frames (the survivor keeps one).
	if m.LiveFrames() != 1 {
		t.Errorf("machine holds %d frames, want 1", m.LiveFrames())
	}
}

func TestPageCacheInsertRaceKeepsCanonical(t *testing.T) {
	m := memsim.NewMachine(0)
	cm := simtime.DefaultCostModel()
	pc := NewPageCache(m, 64*memsim.PageSize)
	first := m.AllocFrame()
	m.WriteFrame(first, 0, []byte("canonical"))
	pc.Insert(nil, cm, 1, 100, 0, first)
	dup := m.AllocFrame()
	got := pc.Insert(nil, cm, 1, 100, 0, dup)
	if got != first {
		t.Fatalf("duplicate insert returned %d, want canonical %d", got, first)
	}
	if m.LiveFrames() != 1 {
		t.Errorf("duplicate frame not released: %d live", m.LiveFrames())
	}
	buf := make([]byte, 9)
	m.ReadFrame(got, 0, buf)
	if !bytes.Equal(buf, []byte("canonical")) {
		t.Errorf("canonical frame bytes = %q", buf)
	}
}

// A 10k-entry cache must invalidate one producer by walking only that
// producer's entries — the per-producer index keeps crash/deregister
// invalidation O(entries of that producer) instead of a full-cache scan.
func TestPageCacheInvalidationScansOneProducer(t *testing.T) {
	const producers = 10
	const perProducer = 1000
	m := memsim.NewMachine(0)
	cm := simtime.DefaultCostModel()
	pc := NewPageCache(m, producers*perProducer*memsim.PageSize)
	for p := 0; p < producers; p++ {
		for i := 0; i < perProducer; i++ {
			pc.Insert(nil, cm, memsim.MachineID(p+1), memsim.PFN(i), 1, m.AllocFrame())
		}
	}
	if got := pc.Len(); got != producers*perProducer {
		t.Fatalf("cache holds %d pages, want %d", got, producers*perProducer)
	}

	before := pc.InvalScanned()
	pc.InvalidateBelow(3, 2) // drop producer 3's gen-1 entries
	scanned := pc.InvalScanned() - before
	if scanned != perProducer {
		t.Errorf("invalidation scanned %d entries, want %d (one producer)", scanned, perProducer)
	}
	if got := pc.Len(); got != (producers-1)*perProducer {
		t.Errorf("cache holds %d pages after invalidation, want %d", got, (producers-1)*perProducer)
	}
	if pc.MachineBytes(3) != 0 {
		t.Errorf("producer 3 still holds %d cached bytes", pc.MachineBytes(3))
	}
	// Every other producer's entries are untouched.
	for p := 1; p <= producers; p++ {
		if p == 3 {
			continue
		}
		if got := pc.MachineBytes(memsim.MachineID(p)); got != perProducer*memsim.PageSize {
			t.Errorf("producer %d holds %d cached bytes, want %d", p, got, perProducer*memsim.PageSize)
		}
	}
	if got := m.LiveFrames(); got != (producers-1)*perProducer {
		t.Errorf("machine holds %d frames, want %d (invalidated frames freed)", got, (producers-1)*perProducer)
	}

	// A crash invalidation is equally targeted.
	before = pc.InvalScanned()
	pc.InvalidateMachine(7)
	if scanned := pc.InvalScanned() - before; scanned != perProducer {
		t.Errorf("crash invalidation scanned %d entries, want %d", scanned, perProducer)
	}
	if got := pc.Len(); got != (producers-2)*perProducer {
		t.Errorf("cache holds %d pages after crash invalidation, want %d", got, (producers-2)*perProducer)
	}
}
