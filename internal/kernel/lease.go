package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rmmap/internal/memsim"
	"rmmap/internal/simtime"
)

// Lease-based liveness (§6 fault tolerance extension).
//
// Every kernel holds a soft-state lease per peer machine, renewed by
// periodic heartbeat probes (the platform drives them on the simulator).
// Three peer states fall out:
//
//	fresh   — a probe succeeded within the TTL; reads proceed untouched.
//	suspect — the lease aged out without crash evidence (a partition, an
//	          overloaded peer). Reads must revalidate: re-auth the specific
//	          registration and fence on generation equality. A generation
//	          mismatch is ErrStaleGeneration — terminal, because frames of
//	          the old generation may already be reclaimed or reused.
//	dead    — a probe (or any RPC) returned ErrMachineCrashed. Terminal;
//	          consumers fail over to a replica proactively instead of
//	          discovering the crash on the read path.
type leaseState struct {
	expires simtime.Time
	dead    bool
	// expired marks that OnLeaseExpired already fired for this aging-out,
	// so the broadcast happens once per expiry, like OnDeregister.
	expired bool
}

// EnableLeases turns on the lease table with the given TTL (≤ 0 disables).
func (k *Kernel) EnableLeases(ttl simtime.Duration) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if ttl <= 0 {
		k.leaseTTL = 0
		k.leases = nil
		return
	}
	k.leaseTTL = ttl
	if k.leases == nil {
		k.leases = make(map[memsim.MachineID]*leaseState)
	}
	if k.hbMeter == nil {
		k.hbMeter = simtime.NewMeter()
	}
}

// LeasesEnabled reports whether the lease table is active.
func (k *Kernel) LeasesEnabled() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.leaseTTL > 0
}

// HeartbeatMeter exposes the background meter heartbeat probes charge
// (CatHeartbeat); nil until leases are enabled.
func (k *Kernel) HeartbeatMeter() *simtime.Meter { return k.hbMeter }

// LeaseExpiries counts leases that aged out without crash evidence.
func (k *Kernel) LeaseExpiries() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.leaseExpiries
}

// Failovers counts consumer mappings this kernel re-pointed at a replica.
func (k *Kernel) Failovers() int64 { return k.failovers.Load() }

func (k *Kernel) lease(peer memsim.MachineID) *leaseState {
	st, ok := k.leases[peer]
	if !ok {
		st = &leaseState{}
		k.leases[peer] = st
	}
	return st
}

// RenewLease marks a successful probe of peer: its lease is fresh for
// another TTL and any suspect state clears (death does not).
func (k *Kernel) RenewLease(peer memsim.MachineID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.leaseTTL <= 0 {
		return
	}
	st := k.lease(peer)
	if st.dead {
		return
	}
	st.expires = k.now() + simtime.Time(k.leaseTTL)
	st.expired = false
}

// ProbeFailed records a failed probe of peer. ErrMachineCrashed proves
// death (OnPeerDead fires once); any other failure merely lets the lease
// age — when it passes the TTL the peer becomes suspect and
// OnLeaseExpired fires once per expiry.
func (k *Kernel) ProbeFailed(peer memsim.MachineID, err error) {
	k.mu.Lock()
	if k.leaseTTL <= 0 {
		k.mu.Unlock()
		return
	}
	st := k.lease(peer)
	if st.dead {
		k.mu.Unlock()
		return
	}
	if errors.Is(err, memsim.ErrMachineCrashed) {
		st.dead = true
		cb := k.OnPeerDead
		k.mu.Unlock()
		if cb != nil {
			cb(peer)
		}
		return
	}
	if !st.expired && k.now() >= st.expires {
		st.expired = true
		k.leaseExpiries++
		cb := k.OnLeaseExpired
		k.mu.Unlock()
		if cb != nil {
			cb(peer)
		}
		return
	}
	k.mu.Unlock()
}

// PeerDead reports whether a probe proved peer crashed.
func (k *Kernel) PeerDead(peer memsim.MachineID) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.leaseTTL <= 0 {
		return false
	}
	st, ok := k.leases[peer]
	return ok && st.dead
}

// LeaseSuspect reports whether peer's lease has aged out without crash
// evidence (reads must revalidate before trusting the mapping).
func (k *Kernel) LeaseSuspect(peer memsim.MachineID) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.leaseTTL <= 0 {
		return false
	}
	st, ok := k.leases[peer]
	return ok && !st.dead && st.expired
}

// Heartbeat probes peer once on this kernel's transport, charging the
// background heartbeat meter under CatHeartbeat, and updates the lease
// table from the outcome. The platform's failure detector calls it every
// HeartbeatPeriod; kernel tests may drive it by hand.
func (k *Kernel) Heartbeat(peer memsim.MachineID) error {
	k.mu.Lock()
	m := k.hbMeter
	enabled := k.leaseTTL > 0
	k.mu.Unlock()
	if !enabled || peer == k.machine.ID() {
		return nil
	}
	_, err := k.callCat(m, simtime.CatHeartbeat, peer, LeaseEndpoint, nil)
	if err != nil {
		k.ProbeFailed(peer, err)
		return err
	}
	k.RenewLease(peer)
	return nil
}

// lease response: gen u64 — the probed machine's current registration
// generation, proof of liveness and a cheap staleness hint.
func (k *Kernel) handleLease(m *simtime.Meter, req []byte) ([]byte, error) {
	if k.machine.Crashed() {
		return nil, fmt.Errorf("%w: machine %d", memsim.ErrMachineCrashed, k.machine.ID())
	}
	k.mu.Lock()
	gen := k.memGen
	k.mu.Unlock()
	resp := make([]byte, 8)
	binary.LittleEndian.PutUint64(resp, gen)
	return resp, nil
}

// callCat routes an RPC through the transport's category-attributed fast
// path when available (preserved by the chaos wrappers).
func (k *Kernel) callCat(m *simtime.Meter, cat simtime.Category, target memsim.MachineID, endpoint string, req []byte) ([]byte, error) {
	if cc, ok := k.transport.(interface {
		CallCat(*simtime.Meter, simtime.Category, memsim.MachineID, string, []byte) ([]byte, error)
	}); ok {
		return cc.CallCat(m, cat, target, endpoint, req)
	}
	return k.transport.Call(m, target, endpoint, req)
}
