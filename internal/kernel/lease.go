package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rmmap/internal/memsim"
	"rmmap/internal/simtime"
)

// Lease-based liveness (§6 fault tolerance extension).
//
// Every kernel holds a soft-state lease per peer machine, renewed by
// periodic heartbeat probes (the platform drives them on the simulator).
// Three peer states fall out:
//
//	fresh   — a probe succeeded within the TTL; reads proceed untouched.
//	suspect — the lease aged out without crash evidence (a partition, an
//	          overloaded peer). Reads must revalidate: re-auth the specific
//	          registration and fence on generation equality. A generation
//	          mismatch is ErrStaleGeneration — terminal, because frames of
//	          the old generation may already be reclaimed or reused.
//	dead    — a probe (or any RPC) returned ErrMachineCrashed. Terminal;
//	          consumers fail over to a replica proactively instead of
//	          discovering the crash on the read path.
type leaseState struct {
	expires simtime.Time
	dead    bool
	// expired marks that OnLeaseExpired already fired for this aging-out,
	// so the broadcast happens once per expiry, like OnDeregister.
	expired bool
}

// EnableLeases turns on the lease table with the given TTL (≤ 0 disables).
func (k *Kernel) EnableLeases(ttl simtime.Duration) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if ttl <= 0 {
		k.leaseTTL = 0
		k.leases = nil
		return
	}
	k.leaseTTL = ttl
	if k.leases == nil {
		k.leases = make(map[memsim.MachineID]*leaseState)
	}
	if k.hbMeter == nil {
		k.hbMeter = simtime.NewMeter()
	}
}

// LeasesEnabled reports whether the lease table is active.
func (k *Kernel) LeasesEnabled() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.leaseTTL > 0
}

// HeartbeatMeter exposes the background meter heartbeat probes charge
// (CatHeartbeat); nil until leases are enabled.
func (k *Kernel) HeartbeatMeter() *simtime.Meter { return k.hbMeter }

// LeaseExpiries counts leases that aged out without crash evidence.
func (k *Kernel) LeaseExpiries() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.leaseExpiries
}

// Failovers counts consumer mappings this kernel re-pointed at a replica.
func (k *Kernel) Failovers() int64 { return k.failovers.Load() }

func (k *Kernel) lease(peer memsim.MachineID) *leaseState {
	st, ok := k.leases[peer]
	if !ok {
		st = &leaseState{}
		k.leases[peer] = st
	}
	return st
}

// RenewLease marks a successful probe of peer: its lease is fresh for
// another TTL and any suspect state clears (death does not).
func (k *Kernel) RenewLease(peer memsim.MachineID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.leaseTTL <= 0 {
		return
	}
	st := k.lease(peer)
	if st.dead {
		return
	}
	st.expires = k.now() + simtime.Time(k.leaseTTL)
	st.expired = false
}

// ProbeFailed records a failed probe of peer. ErrMachineCrashed proves
// death (OnPeerDead fires once); any other failure merely lets the lease
// age — when it passes the TTL the peer becomes suspect and
// OnLeaseExpired fires once per expiry.
func (k *Kernel) ProbeFailed(peer memsim.MachineID, err error) {
	k.mu.Lock()
	if k.leaseTTL <= 0 {
		k.mu.Unlock()
		return
	}
	st := k.lease(peer)
	if st.dead {
		k.mu.Unlock()
		return
	}
	if errors.Is(err, memsim.ErrMachineCrashed) {
		st.dead = true
		cb := k.OnPeerDead
		k.mu.Unlock()
		if cb != nil {
			cb(peer)
		}
		return
	}
	if !st.expired && k.now() >= st.expires {
		st.expired = true
		k.leaseExpiries++
		cb := k.OnLeaseExpired
		k.mu.Unlock()
		if cb != nil {
			cb(peer)
		}
		return
	}
	k.mu.Unlock()
}

// PeerDead reports whether a probe proved peer crashed.
func (k *Kernel) PeerDead(peer memsim.MachineID) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.leaseTTL <= 0 {
		return false
	}
	st, ok := k.leases[peer]
	return ok && st.dead
}

// LeaseSuspect reports whether peer's lease has aged out without crash
// evidence (reads must revalidate before trusting the mapping).
func (k *Kernel) LeaseSuspect(peer memsim.MachineID) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.leaseTTL <= 0 {
		return false
	}
	st, ok := k.leases[peer]
	return ok && !st.dead && st.expired
}

// MarkPeerDead records third-party proof (a gossiped death certificate)
// that peer crashed, firing OnPeerDead exactly as a direct failed probe
// would. Certificates naming this machine itself are ignored.
func (k *Kernel) MarkPeerDead(peer memsim.MachineID) {
	if peer == k.machine.ID() {
		return
	}
	k.mu.Lock()
	if k.leaseTTL <= 0 {
		k.mu.Unlock()
		return
	}
	st := k.lease(peer)
	if st.dead {
		k.mu.Unlock()
		return
	}
	st.dead = true
	cb := k.OnPeerDead
	k.mu.Unlock()
	if cb != nil {
		cb(peer)
	}
}

// DeadPeers returns the machines this kernel holds death certificates
// for, in ascending ID order (the deterministic gossip payload).
func (k *Kernel) DeadPeers() []memsim.MachineID {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.deadPeersLocked()
}

func (k *Kernel) deadPeersLocked() []memsim.MachineID {
	var dead []memsim.MachineID
	for peer, st := range k.leases {
		if st.dead {
			dead = append(dead, peer)
		}
	}
	for i := 1; i < len(dead); i++ {
		for j := i; j > 0 && dead[j] < dead[j-1]; j-- {
			dead[j], dead[j-1] = dead[j-1], dead[j]
		}
	}
	return dead
}

// encodeCerts frames death certificates: u16 n | n × u32 machine.
func encodeCerts(dead []memsim.MachineID) []byte {
	b := make([]byte, 2, 2+4*len(dead))
	binary.LittleEndian.PutUint16(b, uint16(len(dead)))
	for _, m := range dead {
		b = binary.LittleEndian.AppendUint32(b, uint32(m))
	}
	return b
}

// decodeCerts parses a certificate frame; a short or absent frame means
// no certificates (the pre-gossip wire format).
func decodeCerts(b []byte) []memsim.MachineID {
	if len(b) < 2 {
		return nil
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+4*n {
		return nil
	}
	dead := make([]memsim.MachineID, 0, n)
	for i := 0; i < n; i++ {
		dead = append(dead, memsim.MachineID(int32(binary.LittleEndian.Uint32(b[2+4*i:]))))
	}
	return dead
}

// Heartbeat probes peer once on this kernel's transport, charging the
// background heartbeat meter under CatHeartbeat, and updates the lease
// table from the outcome. The probe doubles as SWIM-lite gossip: the
// request piggybacks this kernel's death certificates and the response
// carries the peer's, so crash evidence spreads peer-to-peer without a
// central scan — which is what keeps detection working while the
// coordinator is down. Only death certificates travel; lease renewals
// stay strictly first-hand, because second-hand freshness would mask
// asymmetric partitions. The platform's failure detector calls this
// every HeartbeatPeriod; kernel tests may drive it by hand.
func (k *Kernel) Heartbeat(peer memsim.MachineID) error {
	k.mu.Lock()
	m := k.hbMeter
	enabled := k.leaseTTL > 0
	certs := k.deadPeersLocked()
	k.mu.Unlock()
	if !enabled || peer == k.machine.ID() {
		return nil
	}
	var req []byte
	if len(certs) > 0 {
		req = encodeCerts(certs)
	}
	resp, err := k.callCat(m, simtime.CatHeartbeat, peer, LeaseEndpoint, req)
	if err != nil {
		k.ProbeFailed(peer, err)
		return err
	}
	k.RenewLease(peer)
	if len(resp) > 8 {
		for _, dead := range decodeCerts(resp[8:]) {
			k.MarkPeerDead(dead)
		}
	}
	return nil
}

// lease request: optional death certificates (u16 n | n × u32 machine);
// nil/empty means none (the pre-gossip format).
// lease response: gen u64 — the probed machine's current registration
// generation, proof of liveness and a cheap staleness hint — followed by
// the responder's own death certificates.
func (k *Kernel) handleLease(m *simtime.Meter, req []byte) ([]byte, error) {
	if k.machine.Crashed() {
		return nil, fmt.Errorf("%w: machine %d", memsim.ErrMachineCrashed, k.machine.ID())
	}
	for _, dead := range decodeCerts(req) {
		k.MarkPeerDead(dead)
	}
	k.mu.Lock()
	gen := k.memGen
	certs := k.deadPeersLocked()
	k.mu.Unlock()
	resp := make([]byte, 8, 8+2+4*len(certs))
	binary.LittleEndian.PutUint64(resp, gen)
	resp = append(resp, encodeCerts(certs)...)
	return resp, nil
}

// callCat routes an RPC through the transport's category-attributed fast
// path when available (preserved by the chaos wrappers).
func (k *Kernel) callCat(m *simtime.Meter, cat simtime.Category, target memsim.MachineID, endpoint string, req []byte) ([]byte, error) {
	if cc, ok := k.transport.(interface {
		CallCat(*simtime.Meter, simtime.Category, memsim.MachineID, string, []byte) ([]byte, error)
	}); ok {
		return cc.CallCat(m, cat, target, endpoint, req)
	}
	return k.transport.Call(m, target, endpoint, req)
}
