package kernel

import (
	"bytes"
	"errors"
	"testing"

	"rmmap/internal/memsim"
	"rmmap/internal/simtime"
)

// fabricPages returns the total pages moved by one-sided reads and
// doorbell batches.
func (c *cluster) fabricPages(t *testing.T) int {
	t.Helper()
	_, _, _, bytesRead := c.fabric.Stats()
	if bytesRead%memsim.PageSize != 0 {
		t.Fatalf("fabric moved a partial page: %d bytes", bytesRead)
	}
	return int(bytesRead / memsim.PageSize)
}

func readAll(t *testing.T, as *memsim.AddressSpace, start, end uint64) []byte {
	t.Helper()
	out := make([]byte, 0, end-start)
	buf := make([]byte, memsim.PageSize)
	for a := start; a < end; a += memsim.PageSize {
		if err := as.Read(a, buf); err != nil {
			t.Fatal(err)
		}
		out = append(out, buf...)
	}
	return out
}

// TestFanOutSingleFabricReadPerPage is the tentpole's headline property:
// co-located consumers of one producer state fetch each page over the
// fabric exactly once; later consumers install the cached frame CoW-shared.
func TestFanOutSingleFabricReadPerPage(t *testing.T) {
	c := newCluster(t, 2)
	c.enableCaches(64<<20, DefaultReadaheadMax)
	const start, end = uint64(0x100000), uint64(0x104000) // 4 pages
	_, meta := producerSetup(t, c, 0, start, end, []byte("fanout-producer!"))

	cons1 := c.newAS(1)
	mp1, err := c.kernels[1].Rmap(cons1, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	first := readAll(t, cons1, start, end)
	if got := c.fabricPages(t); got != 4 {
		t.Fatalf("first consumer moved %d pages over the fabric, want 4", got)
	}

	cons2 := c.newAS(1)
	mp2, err := c.kernels[1].Rmap(cons2, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	second := readAll(t, cons2, start, end)
	if got := c.fabricPages(t); got != 4 {
		t.Fatalf("second consumer refetched: %d pages total, want still 4", got)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("consumers read different bytes")
	}
	s := c.kernels[1].CacheStats()
	if s.Hits < 4 {
		t.Errorf("cache hits = %d, want ≥ 4", s.Hits)
	}

	// Byte isolation (CoW break): a write in one consumer is invisible to
	// the other and to later cache hits.
	if err := cons2.Write(start, []byte("OVERWRITTEN!")); err != nil {
		t.Fatal(err)
	}
	again := readAll(t, cons1, start, end)
	if !bytes.Equal(first, again) {
		t.Fatal("consumer 2's write leaked into consumer 1")
	}
	got := make([]byte, 12)
	if err := cons2.Read(start, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "OVERWRITTEN!" {
		t.Errorf("consumer 2 lost its own write: %q", got)
	}
	cons3 := c.newAS(1)
	mp3, err := c.kernels[1].Rmap(cons3, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	third := readAll(t, cons3, start, end)
	if !bytes.Equal(first, third) {
		t.Fatal("cached frame was dirtied by a consumer write")
	}
	if got := c.fabricPages(t); got != 4 {
		t.Fatalf("third consumer refetched: %d pages total, want still 4", got)
	}

	// Teardown releases everything: unmap the consumers, deregister (which
	// broadcasts invalidation like the platform does), and the consumer
	// machine is back to zero live frames.
	for _, k := range c.kernels {
		k.OnDeregister = func(mac memsim.MachineID, below uint64) {
			for _, kk := range c.kernels {
				kk.PageCache().InvalidateBelow(mac, below)
			}
		}
	}
	for _, mp := range []*Mapping{mp1, mp2, mp3} {
		if err := mp.Unmap(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.kernels[0].DeregisterMem(meta.ID, meta.Key); err != nil {
		t.Fatal(err)
	}
	if c.kernels[1].PageCache().Len() != 0 {
		t.Error("deregister_mem broadcast left cache entries")
	}
	if n := c.machines[1].LiveFrames(); n != 0 {
		t.Errorf("consumer machine leaks %d frames", n)
	}
}

// TestReadaheadCoalescesSequentialFaults: a sequential scan over a dense
// mapping pays a handful of doorbell batches, not one roundtrip per page.
func TestReadaheadCoalescesSequentialFaults(t *testing.T) {
	c := newCluster(t, 2)
	c.enableCaches(64<<20, DefaultReadaheadMax)
	const pages = 64
	const start = uint64(0x100000)
	end := start + pages*memsim.PageSize
	_, meta := producerSetup(t, c, 0, start, end, []byte("sequential-scan!"))

	cons := c.newAS(1)
	if _, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End); err != nil {
		t.Fatal(err)
	}
	seq := readAll(t, cons, start, end)
	reads, batches, _, _ := c.fabric.Stats()
	if got := c.fabricPages(t); got != pages {
		t.Fatalf("fabric moved %d pages, want %d", got, pages)
	}
	if roundtrips := reads + batches; roundtrips > 10 {
		t.Errorf("sequential scan took %d roundtrips for %d pages (readahead not coalescing)", roundtrips, pages)
	}
	if ra := c.kernels[1].ReadaheadPages(); ra == 0 {
		t.Error("readahead fetched no pages on a sequential scan")
	}
	if meter := cons.Meter(); meter.Get(simtime.CatReadahead) == 0 {
		t.Error("readahead batches charged nothing to CatReadahead")
	}

	// Equivalence: the same scan with readahead (and cache) disabled reads
	// identical bytes, one roundtrip per page.
	c2 := newCluster(t, 2)
	_, meta2 := producerSetup(t, c2, 0, start, end, []byte("sequential-scan!"))
	cons2 := c2.newAS(1)
	if _, err := c2.kernels[1].Rmap(cons2, meta2.Machine, meta2.ID, meta2.Key, meta2.Start, meta2.End); err != nil {
		t.Fatal(err)
	}
	plain := readAll(t, cons2, start, end)
	if !bytes.Equal(seq, plain) {
		t.Fatal("readahead changed the bytes read")
	}
	reads2, batches2, _, _ := c2.fabric.Stats()
	if reads2 != pages || batches2 != 0 {
		t.Errorf("baseline: %d reads %d batches, want %d/0", reads2, batches2, pages)
	}
}

// TestReadaheadResetsOnRandomAccess: a strided access pattern must not keep
// a wide window — each stride break resets it to one page.
func TestReadaheadResetsOnRandomAccess(t *testing.T) {
	c := newCluster(t, 2)
	c.enableCaches(64<<20, DefaultReadaheadMax)
	const pages = 32
	const start = uint64(0x100000)
	end := start + pages*memsim.PageSize
	_, meta := producerSetup(t, c, 0, start, end, []byte("strided-access!!"))

	cons := c.newAS(1)
	if _, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End); err != nil {
		t.Fatal(err)
	}
	// Touch every fourth page: never two sequential faults in a row.
	buf := make([]byte, 8)
	for i := 0; i < pages; i += 4 {
		if err := cons.Read(start+uint64(i)*memsim.PageSize, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := c.fabricPages(t), pages/4; got != want {
		t.Errorf("strided scan fetched %d pages, want %d (window must reset)", got, want)
	}
}

// TestCacheSkipsRPCPaging: the Fig 15 RPC ablation must keep paying one RPC
// per page per consumer — caching it would erase the effect being measured.
func TestCacheSkipsRPCPaging(t *testing.T) {
	c := newCluster(t, 2)
	c.enableCaches(64<<20, DefaultReadaheadMax)
	const start, end = uint64(0x100000), uint64(0x102000)
	_, meta := producerSetup(t, c, 0, start, end, []byte("rpc-paging-path!"))

	for i := 0; i < 2; i++ {
		cons := c.newAS(1)
		mp, err := c.kernels[1].RmapMode(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End, PagingRPC)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, cons, start, end)
		if err := mp.Unmap(); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.kernels[1].CacheStats(); s.Hits != 0 || s.Inserts != 0 {
		t.Errorf("RPC paging touched the page cache: %+v", s)
	}
}

// TestPrefetchPopulatesCache: an explicit Prefetch fills the cache, so a
// second co-located consumer's prefetch moves nothing over the fabric.
func TestPrefetchPopulatesCache(t *testing.T) {
	c := newCluster(t, 2)
	c.enableCaches(64<<20, DefaultReadaheadMax)
	const start, end = uint64(0x100000), uint64(0x104000)
	_, meta := producerSetup(t, c, 0, start, end, []byte("prefetch-shared!"))

	var res [2][]byte
	for i := 0; i < 2; i++ {
		cons := c.newAS(1)
		mp, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
		if err != nil {
			t.Fatal(err)
		}
		if err := mp.PrefetchRange(start, end); err != nil {
			t.Fatal(err)
		}
		res[i] = readAll(t, cons, start, end)
	}
	if got := c.fabricPages(t); got != 4 {
		t.Errorf("two prefetching consumers moved %d pages, want 4", got)
	}
	if !bytes.Equal(res[0], res[1]) {
		t.Error("prefetched consumers read different bytes")
	}
}

// TestDeregisterBumpsGeneration: a registration created after a dereg gets
// a higher generation, so its consumers can never hit frames cached from
// the reclaimed one even without an invalidation broadcast.
func TestDeregisterBumpsGeneration(t *testing.T) {
	c := newCluster(t, 2)
	c.enableCaches(64<<20, 0)
	const start, end = uint64(0x100000), uint64(0x101000)
	as, meta := producerSetup(t, c, 0, start, end, []byte("generation-one!!"))

	cons := c.newAS(1)
	mp1, err := c.kernels[1].Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, cons, start, end)
	if err := mp1.Unmap(); err != nil {
		t.Fatal(err)
	}
	if err := c.kernels[0].DeregisterMem(meta.ID, meta.Key); err != nil {
		t.Fatal(err)
	}

	if err := as.Write(start, []byte("generation-two!!")); err != nil {
		t.Fatal(err)
	}
	meta2, err := c.kernels[0].RegisterMem(as, meta.ID, meta.Key, start, end)
	if err != nil {
		t.Fatal(err)
	}
	cons2 := c.newAS(1)
	mp2, err := c.kernels[1].Rmap(cons2, meta2.Machine, meta2.ID, meta2.Key, meta2.Start, meta2.End)
	if err != nil {
		t.Fatal(err)
	}
	if mp2.Generation() <= mp1.Generation() {
		t.Fatalf("generation did not advance: %d then %d", mp1.Generation(), mp2.Generation())
	}
	got := make([]byte, 16)
	if err := cons2.Read(start, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation-two!!" {
		t.Errorf("stale cache hit across deregister: %q", got)
	}
}

// TestFailoverKeepsCachedFrames: frames cached from a producer that later
// crashed stay valid hits for a failed-over consumer — generation fencing
// (the replica serves the same generation) keeps them honest, so failover
// costs zero extra fabric reads for already-cached pages.
func TestFailoverKeepsCachedFrames(t *testing.T) {
	c := newCluster(t, 3)
	c.enableCaches(64<<20, 0)
	s := c.withSim()
	c.kernels[0].EnableReplication([]memsim.MachineID{1}, s.After)

	const start, end = uint64(0x100000), uint64(0x104000) // 4 pages
	_, meta := producerSetup(t, c, 0, start, end, []byte("cached-failover!"))
	s.Run()

	// First consumer on machine 2 pulls every page into m2's cache.
	cons1 := c.newAS(2)
	mp1, err := c.kernels[2].RmapMeta(cons1, meta, 0, PagingRDMA)
	if err != nil {
		t.Fatal(err)
	}
	want := readAll(t, cons1, start, end)
	if mp1.FailedOver() {
		t.Fatal("healthy rmap failed over")
	}

	// Producer dies. The platform retains cached pages when replication is
	// on; at kernel level nothing invalidates, matching that policy.
	c.machines[0].Crash()

	cons2 := c.newAS(2)
	mp2, err := c.kernels[2].RmapMeta(cons2, meta, 0, PagingRDMA)
	if err != nil {
		t.Fatal(err)
	}
	if !mp2.FailedOver() {
		t.Fatal("rmap of dead producer did not fail over")
	}
	hitsBefore := c.kernels[2].CacheStats().Hits
	before := c.fabricPages(t)
	got := readAll(t, cons2, start, end)
	if !bytes.Equal(got, want) {
		t.Fatal("failed-over consumer read different bytes")
	}
	if moved := c.fabricPages(t) - before; moved != 0 {
		t.Fatalf("failed-over reads moved %d pages despite warm cache", moved)
	}
	if hits := c.kernels[2].CacheStats().Hits - hitsBefore; hits != 4 {
		t.Fatalf("cache hits after failover = %d, want 4", hits)
	}
}

// TestLeaseExpiryBroadcastInvalidation: wiring OnLeaseExpired to the page
// cache drops a suspect machine's cached frames exactly like the
// OnDeregister broadcast does for reclaimed ones.
func TestLeaseExpiryBroadcastInvalidation(t *testing.T) {
	c := newCluster(t, 2)
	c.enableCaches(64<<20, 0)
	k := c.kernels[1]
	var now simtime.Time
	k.Clock = func() simtime.Time { return now }
	k.EnableLeases(100 * simtime.Microsecond)
	k.OnLeaseExpired = func(peer memsim.MachineID) {
		k.PageCache().InvalidateMachine(peer)
	}

	const start, end = uint64(0x100000), uint64(0x104000)
	_, meta := producerSetup(t, c, 0, start, end, []byte("lease-cached-pg!"))
	cons := c.newAS(1)
	if _, err := k.Rmap(cons, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End); err != nil {
		t.Fatal(err)
	}
	readAll(t, cons, start, end)
	if k.PageCache().Len() != 4 {
		t.Fatalf("cache holds %d pages, want 4", k.PageCache().Len())
	}

	now = simtime.Time(200 * simtime.Microsecond)
	k.ProbeFailed(0, errors.New("probe timeout"))
	if k.PageCache().Len() != 0 {
		t.Fatalf("lease expiry left %d pages cached", k.PageCache().Len())
	}
	// The expiry fired once; a repeat failure must not re-broadcast.
	k.ProbeFailed(0, errors.New("probe timeout"))
	if k.LeaseExpiries() != 1 {
		t.Fatalf("lease expiries = %d, want 1", k.LeaseExpiries())
	}
}
