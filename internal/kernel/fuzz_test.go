package kernel

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"rmmap/internal/memsim"
)

// encodeAuthResponse re-encodes a decoded auth reply in canonical (sorted
// VPN) order — the round-trip oracle for FuzzAuthWire.
func encodeAuthResponse(ar authResponse) []byte {
	hdr := 14 + 8*len(ar.backups)
	out := make([]byte, hdr, hdr+16*len(ar.pages))
	binary.LittleEndian.PutUint32(out, uint32(len(ar.pages)))
	binary.LittleEndian.PutUint64(out[4:], ar.gen)
	binary.LittleEndian.PutUint16(out[12:], uint16(len(ar.backups)))
	for i, b := range ar.backups {
		binary.LittleEndian.PutUint64(out[14+8*i:], uint64(b))
	}
	vpns := make([]memsim.VPN, 0, len(ar.pages))
	for v := range ar.pages {
		vpns = append(vpns, v)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, v := range vpns {
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[:], uint64(v))
		binary.LittleEndian.PutUint64(rec[8:], uint64(ar.pages[v]))
		out = append(out, rec[:]...)
	}
	return out
}

func encodeReplicaAuthResponse(ra replicaAuthResponse) []byte {
	out := make([]byte, 13, 13+24*len(ra.logical))
	binary.LittleEndian.PutUint64(out, ra.gen)
	if ra.complete {
		out[8] = 1
	}
	binary.LittleEndian.PutUint32(out[9:], uint32(len(ra.logical)))
	vpns := make([]memsim.VPN, 0, len(ra.logical))
	for v := range ra.logical {
		vpns = append(vpns, v)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, v := range vpns {
		var rec [24]byte
		binary.LittleEndian.PutUint64(rec[:], uint64(v))
		binary.LittleEndian.PutUint64(rec[8:], uint64(ra.logical[v]))
		binary.LittleEndian.PutUint64(rec[16:], uint64(ra.phys[v]))
		out = append(out, rec[:]...)
	}
	return out
}

// FuzzAuthWire throws arbitrary bytes at both kernel wire decoders (the
// rmap auth reply and the replica-auth reply). Neither may panic or
// over-allocate, and any reply a decoder accepts must survive a canonical
// re-encode → re-decode round trip — duplicate VPN records are the one
// lossy case (last write wins in the page-table map), which the length
// comparison detects and tolerates.
func FuzzAuthWire(f *testing.F) {
	// Minimal valid auth reply: count=0, gen=1, nback=0.
	f.Add(append([]byte{0, 0, 0, 0}, append([]byte{1, 0, 0, 0, 0, 0, 0, 0}, 0, 0)...))
	// One page, one backup.
	f.Add(encodeAuthResponse(authResponse{
		gen:     2,
		backups: []memsim.MachineID{3},
		pages:   map[memsim.VPN]memsim.PFN{4: 5},
	}))
	// Minimal valid replica reply: gen=1, complete, count=0.
	f.Add(encodeReplicaAuthResponse(replicaAuthResponse{gen: 1, complete: true}))
	f.Add(encodeReplicaAuthResponse(replicaAuthResponse{
		gen: 9, complete: false,
		logical: map[memsim.VPN]memsim.PFN{7: 8},
		phys:    map[memsim.VPN]memsim.PFN{7: 11},
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if ar, err := parseAuthResponse(data); err == nil {
			if ar.gen != binary.LittleEndian.Uint64(data[4:]) {
				t.Fatalf("auth gen mismatch")
			}
			enc := encodeAuthResponse(ar)
			if len(enc) == len(data) {
				ar2, err2 := parseAuthResponse(enc)
				if err2 != nil {
					t.Fatalf("auth re-decode failed: %v", err2)
				}
				if !bytes.Equal(encodeAuthResponse(ar2), enc) {
					t.Fatalf("auth round trip not stable")
				}
			}
		}
		if ra, err := parseReplicaAuthResponse(data); err == nil {
			if ra.gen != binary.LittleEndian.Uint64(data) {
				t.Fatalf("replica gen mismatch")
			}
			enc := encodeReplicaAuthResponse(ra)
			if len(enc) == len(data) {
				ra2, err2 := parseReplicaAuthResponse(enc)
				if err2 != nil {
					t.Fatalf("replica re-decode failed: %v", err2)
				}
				if !bytes.Equal(encodeReplicaAuthResponse(ra2), enc) {
					t.Fatalf("replica round trip not stable")
				}
			}
		}
	})
}
