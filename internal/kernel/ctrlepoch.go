package kernel

import (
	"errors"
	"fmt"
	"sort"
)

// Coordinator-epoch fencing (DESIGN.md §13).
//
// Every control-plane command that can destroy data (today: reclamation)
// carries the epoch of the coordinator incarnation that issued it.
// Kernels remember the highest epoch they have seen and refuse commands
// from lower ones, exactly like PR-3 generation fencing on the data
// plane: after a coordinator crash + recovery bumps the epoch, a zombie
// pre-crash coordinator (or a delayed command it issued) can never
// reclaim memory the recovered incarnation considers live.

// ErrStaleEpoch fences a control-plane command whose coordinator epoch
// is lower than the highest this kernel has adopted.
var ErrStaleEpoch = errors.New("kernel: command from a stale coordinator epoch")

// Epochs are tracked per coordinator shard (DESIGN.md §15): a shard
// crash + recovery bumps only that shard's epoch, so its stale commands
// fence while every other shard's commands keep flowing. The unsuffixed
// API operates on shard 0 — exactly the single-shard (default) control
// plane's epoch, preserving the pre-sharding behaviour.

// AdoptShardEpoch raises this kernel's adopted epoch for one coordinator
// shard; lower values are ignored (epochs only move forward).
func (k *Kernel) AdoptShardEpoch(shard int, epoch uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if epoch > k.ctrlEpochs[shard] {
		if k.ctrlEpochs == nil {
			k.ctrlEpochs = make(map[int]uint64)
		}
		k.ctrlEpochs[shard] = epoch
	}
}

// CtrlShardEpoch returns the highest epoch adopted for one shard.
func (k *Kernel) CtrlShardEpoch(shard int) uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.ctrlEpochs[shard]
}

// AdoptEpoch raises the shard-0 epoch (single-shard control plane).
func (k *Kernel) AdoptEpoch(epoch uint64) { k.AdoptShardEpoch(0, epoch) }

// CtrlEpoch returns the highest shard-0 epoch this kernel has seen.
func (k *Kernel) CtrlEpoch() uint64 { return k.CtrlShardEpoch(0) }

// DeregisterMemFencedShard is DeregisterMem gated on the issuing shard
// incarnation's epoch. A command from a stale epoch is refused with
// ErrStaleEpoch; a newer epoch is adopted first (commands are implicit
// epoch announcements, as in SWIM-style incarnation numbers). The fence
// is per shard: it never consults — or disturbs — other shards' epochs.
func (k *Kernel) DeregisterMemFencedShard(shard int, epoch uint64, id FuncID, key Key) error {
	k.mu.Lock()
	if cur := k.ctrlEpochs[shard]; epoch < cur {
		k.mu.Unlock()
		return fmt.Errorf("%w: shard %d epoch %d < %d (id=%d)", ErrStaleEpoch, shard, epoch, cur, id)
	} else if epoch > cur {
		if k.ctrlEpochs == nil {
			k.ctrlEpochs = make(map[int]uint64)
		}
		k.ctrlEpochs[shard] = epoch
	}
	k.mu.Unlock()
	return k.DeregisterMem(id, key)
}

// DeregisterMemFenced is the shard-0 form of DeregisterMemFencedShard.
func (k *Kernel) DeregisterMemFenced(epoch uint64, id FuncID, key Key) error {
	return k.DeregisterMemFencedShard(0, epoch, id, key)
}

// RegListing is one live registration named by its (id, key) pair; the
// recovered coordinator reconciles its directory against these.
type RegListing struct {
	ID  FuncID
	Key Key
}

// ListRegistrations returns the live registrations sorted by (ID, Key),
// a deterministic listing for control-plane reconciliation.
func (k *Kernel) ListRegistrations() []RegListing {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]RegListing, 0, len(k.regs))
	for rk := range k.regs {
		out = append(out, RegListing{ID: rk.id, Key: rk.key})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ExtendACL adds consumers to a registration's permission list without
// replacing it. Unlike SetACL it never widens a nil (allow-any) list into
// a restriction: extending a nil ACL is a no-op, since every consumer is
// already allowed. The data plane calls this directly during forwarding —
// the kernel stays authoritative for access control even while the
// coordinator (which journals the same extension) is down.
func (k *Kernel) ExtendACL(id FuncID, key Key, more []FuncID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.regs[regKey{id, key}]
	if !ok {
		return fmt.Errorf("%w: id=%d", ErrNotRegistered, id)
	}
	if e.allowed == nil {
		return nil
	}
	for _, c := range more {
		e.allowed[c] = struct{}{}
	}
	return nil
}
