// Command rmmap-load drives open-loop multi-tenant load — Poisson or
// bursty arrivals from thousands of virtual tenants — through the
// admission-controlled engine, optionally under a fault plan, and writes
// the deterministic BENCH_scale.json scale report (DESIGN.md §11).
//
// Usage:
//
//	rmmap-load [-workflow wordcount] [-small] [-rate 200] [-burst-rate 0]
//	           [-burst-every 500ms] [-burst-len 100ms] [-horizon 2s]
//	           [-tenants 1000] [-deadline 0] [-seed 1] [-plan plan.json]
//	           [-topology two-rack | -topology topo.json]
//	           [-queue-limit 256] [-max-inflight 64] [-queue-policy fifo]
//	           [-quota-rate 0] [-quota-burst 0] [-breaker-threshold 8]
//	           [-curve 0.25,0.5,1,2,4] [-save-trace t.jsonl | -trace t.jsonl]
//	           [-json BENCH_scale.json]
//
// The whole run happens in virtual time: the report is byte-identical
// across -workers settings and across repeated runs, which the
// determinism suite (internal/bench) enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rmmap/internal/admit"
	"rmmap/internal/faults"
	"rmmap/internal/load"
	"rmmap/internal/platform"
	"rmmap/internal/platformbuilder"
	"rmmap/internal/simtime"
)

func main() {
	name := flag.String("workflow", "wordcount", "workflow: finra, ml-training, ml-prediction, wordcount")
	small := flag.Bool("small", false, "use the small (test-scale) configuration")
	machines := flag.Int("machines", 4, "cluster size")
	pods := flag.Int("pods", 16, "warm pods")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = all cores); the report is identical at any setting")
	ctrlShards := flag.Int("ctrl-shards", 0, "consistent-hash coordinator shards (0/1 = single coordinator); the report is identical at any setting")
	mode := flag.String("mode", "rmmap", "transfer mode: messaging, pocket, rdma, rmmap, prefetch")
	topology := flag.String("topology", "", "cluster shape: a platformbuilder recipe name or topology JSON file (see PLATFORMS.md); default flat")

	rate := flag.Float64("rate", 200, "steady offered load, requests per virtual second")
	burstRate := flag.Float64("burst-rate", 0, "offered load inside burst windows (0: no bursts)")
	burstEvery := flag.Duration("burst-every", 500*time.Millisecond, "burst period")
	burstLen := flag.Duration("burst-len", 100*time.Millisecond, "burst window length")
	horizon := flag.Duration("horizon", 2*time.Second, "virtual-time arrival horizon")
	tenants := flag.Int("tenants", 1000, "virtual tenants submitting requests")
	deadline := flag.Duration("deadline", 0, "per-request relative deadline (0: none)")
	seed := flag.Uint64("seed", 1, "arrival-schedule seed; same seed, same schedule")

	planPath := flag.String("plan", "", "JSON fault plan to run the load under")
	replicas := flag.Int("replicas", 0, "backup machines per registration")
	coldStart := flag.Bool("cold-start", false, "charge container cold starts")

	queueLimit := flag.Int("queue-limit", admit.DefaultQueueLimit, "admission queue bound")
	maxInflight := flag.Int("max-inflight", admit.DefaultMaxInflight, "max concurrently running requests")
	queuePolicy := flag.String("queue-policy", "fifo", "admission dequeue order: fifo or deadline")
	regWatermark := flag.Int("reg-watermark", 0, "live-registration backpressure watermark (0: off)")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant token refill rate, requests per virtual second (0: unlimited)")
	quotaBurst := flag.Float64("quota-burst", 0, "per-tenant token-bucket capacity")
	breakerThreshold := flag.Int("breaker-threshold", admit.DefaultBreakerThreshold, "consecutive bad outcomes that trip a tenant's breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before half-opening (0: default)")

	curve := flag.String("curve", "", "comma-separated offered-load multipliers for the goodput-vs-offered curve (e.g. 0.5,1,2,4)")
	saveTrace := flag.String("save-trace", "", "write the generated arrival schedule as JSONL and exit")
	tracePath := flag.String("trace", "", "replay a JSONL arrival trace instead of generating one")
	jsonPath := flag.String("json", "", "write the scale report to this file (e.g. BENCH_scale.json)")
	flag.Parse()

	gen := load.BurstSpec{
		BaseRate:   *rate,
		BurstRate:  *burstRate,
		BurstEvery: simtime.Duration(burstEvery.Nanoseconds()),
		BurstLen:   simtime.Duration(burstLen.Nanoseconds()),
		Horizon:    simtime.Duration(horizon.Nanoseconds()),
		Tenants:    *tenants,
		Deadline:   simtime.Duration(deadline.Nanoseconds()),
		Seed:       *seed,
	}
	if *saveTrace != "" {
		events := load.Bursty(gen)
		if err := load.SaveTrace(*saveTrace, events); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d arrivals to %s\n", len(events), *saveTrace)
		return
	}

	var events []load.Event
	if *tracePath != "" {
		var err error
		events, err = load.LoadTrace(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var plan faults.Plan
	if *planPath != "" {
		var err error
		plan, err = faults.LoadPlan(*planPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	policy, err := admit.ParsePolicy(*queuePolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	multipliers, err := parseCurve(*curve)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *topology != "" {
		if _, err := platformbuilder.Resolve(*topology, *machines); err != nil {
			fmt.Fprintf(os.Stderr, "-topology: %v (known recipes: %v)\n", err, platformbuilder.Recipes())
			os.Exit(1)
		}
	}

	spec := load.SoakSpec{
		Workflow:   *name,
		Small:      *small,
		Mode:       m,
		Machines:   *machines,
		Pods:       *pods,
		Workers:    *workers,
		CtrlShards: *ctrlShards,
		Topology:   *topology,
		Gen:        gen,
		Events:     events,
		Plan:       plan,
		Admission: admit.Config{
			QueueLimit:       *queueLimit,
			MaxInflight:      *maxInflight,
			Policy:           policy,
			RegWatermark:     *regWatermark,
			Quota:            admit.Quota{Rate: *quotaRate, Burst: *quotaBurst},
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  simtime.Duration(breakerCooldown.Nanoseconds()),
		},
		Replicas:         *replicas,
		ColdStart:        *coldStart,
		CurveMultipliers: multipliers,
	}
	rep, err := load.RunSoak(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s (%s): %d tenants, %d arrivals over %gs\n",
		rep.Workflow, rep.Mode, rep.Tenants, rep.Offered, rep.HorizonS)
	fmt.Println(rep.Summary())
	fmt.Printf("sheds: queue-full=%d quota=%d breaker=%d backpressure=%d deadline=%d; breaker trips=%d\n",
		rep.ShedQueueFull, rep.ShedQuota, rep.ShedBreaker, rep.ShedBackpressure,
		rep.ShedDeadline, rep.BreakerTrips)
	fmt.Printf("injected faults: %d\n", rep.InjectedFaults)
	for _, p := range rep.Curve {
		fmt.Printf("  x%g: offered %.1f req/s -> goodput %.1f req/s (shed %.1f%%, p99 %.3fms)\n",
			p.Multiplier, p.OfferedRPS, p.GoodputRPS, 100*p.ShedRate, p.P99Ms)
	}
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func parseMode(s string) (platform.Mode, error) {
	switch s {
	case "messaging":
		return platform.ModeMessaging, nil
	case "pocket":
		return platform.ModeStoragePocket, nil
	case "rdma":
		return platform.ModeStorageDrTM, nil
	case "rmmap":
		return platform.ModeRMMAP, nil
	case "prefetch":
		return platform.ModeRMMAPPrefetch, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want messaging, pocket, rdma, rmmap, prefetch)", s)
	}
}

func parseCurve(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -curve multiplier %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
