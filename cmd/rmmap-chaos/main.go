// Command rmmap-chaos runs a built-in workflow under a seeded,
// deterministic fault-injection plan (DESIGN.md §7, §9) and reports what
// the recovery ladder did: transport retries, partition waits, replica
// failovers, messaging fallbacks, and producer re-executions.
//
// Usage:
//
//	rmmap-chaos [-workflow finra] [-small] [-seed 20260805] [-prob 0.1]
//	            [-crash-machine 1 -crash-at 100us] [-plan plan.json]
//	            [-replicas 1] [-no-replication] [-no-recovery] [-trace]
//
// A -plan file replaces the flag-built plan entirely (see
// cmd/rmmap-chaos/plans/ for examples including partitions).
package main

import (
	"flag"
	"fmt"
	"os"

	"rmmap/internal/faults"
	"rmmap/internal/memsim"
	"rmmap/internal/platform"
	"rmmap/internal/simtime"
	"rmmap/internal/workloads"
)

func main() {
	name := flag.String("workflow", "finra", "workflow: finra, ml-training, ml-prediction, wordcount")
	small := flag.Bool("small", false, "use the small (test-scale) configuration")
	planPath := flag.String("plan", "", "JSON fault plan (overrides -seed/-prob/-crash-* flags)")
	seed := flag.Uint64("seed", 20260805, "fault-plan seed; same seed, same schedule")
	prob := flag.Float64("prob", 0.1, "transient-fault probability on remote reads, doorbells and RPCs")
	endpoint := flag.String("endpoint", "", "restrict the RPC rule to one endpoint (e.g. rmmap.auth)")
	crashMachine := flag.Int("crash-machine", -1, "machine to crash (-1: none)")
	crashAt := flag.Duration("crash-at", 0, "virtual-time instant of the crash (e.g. 100us)")
	noRecovery := flag.Bool("no-recovery", false, "negative control: disable the recovery ladder")
	maxReexecs := flag.Int("max-reexecs", platform.DefaultMaxReexecutions, "producer re-execution budget per request")
	degradeAfter := flag.Int("degrade-after", platform.DefaultDegradeAfter, "edge failures before falling back to messaging")
	replicas := flag.Int("replicas", 0, "backup machines per registration (0: replication off)")
	noReplication := flag.Bool("no-replication", false, "force replication off even with -replicas set")
	machines := flag.Int("machines", 4, "cluster size")
	pods := flag.Int("pods", 16, "warm pods")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = all cores, 1 = sequential); the fault schedule and outcome are identical at any setting")
	trace := flag.Bool("trace", false, "print the per-invocation execution timeline")
	flag.Parse()

	wf, err := buildWorkflow(*name, *small)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var plan faults.Plan
	if *planPath != "" {
		plan, err = faults.LoadPlan(*planPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		plan = faults.Plan{Seed: *seed}
		if *prob > 0 {
			plan.Rules = []faults.Rule{
				{Site: faults.SiteRDMARead, Target: faults.AnyMachine, Prob: *prob},
				{Site: faults.SiteDoorbell, Target: faults.AnyMachine, Prob: *prob},
				{Site: faults.SiteRPC, Target: faults.AnyMachine, Endpoint: *endpoint, Prob: *prob},
			}
		}
		if *crashMachine >= 0 {
			plan.Crashes = []faults.Crash{{
				Machine: memsim.MachineID(*crashMachine),
				At:      simtime.Time(crashAt.Nanoseconds()),
			}}
		}
	}

	rec := platform.DefaultRecoveryPolicy()
	rec.MaxReexecutions = *maxReexecs
	rec.DegradeAfter = *degradeAfter
	opts := platform.Options{
		Trace:         *trace,
		Recovery:      rec,
		Replicas:      *replicas,
		NoReplication: *noReplication,
		Workers:       *workers,
	}
	if *noRecovery {
		opts.Recovery = nil
	}
	cluster := platform.NewChaosCluster(*machines, simtime.DefaultCostModel(), plan, rec.Retry)
	engine, err := platform.NewEngineOn(cluster, wf, platform.ModeRMMAPPrefetch, opts, *pods)
	if err != nil {
		fmt.Fprintf(os.Stderr, "engine: %v\n", err)
		os.Exit(1)
	}

	if *planPath != "" {
		fmt.Printf("plan: %s (seed=%d rules=%d crashes=%d partitions=%d)",
			*planPath, plan.Seed, len(plan.Rules), len(plan.Crashes), len(plan.Partitions))
	} else {
		fmt.Printf("plan: seed=%d prob=%g", *seed, *prob)
		if *crashMachine >= 0 {
			fmt.Printf(" crash=machine%d@%v", *crashMachine, simtime.Duration((*crashAt).Nanoseconds()))
		}
	}
	if *replicas > 0 && !*noReplication {
		fmt.Printf(" replicas=%d", *replicas)
	}
	if *noRecovery {
		fmt.Printf(" recovery=off")
	}
	fmt.Println()

	var res platform.RunResult
	engine.Submit(func(out platform.RunResult) { res = out })
	engine.Cluster.Sim.Run()

	fmt.Printf("injected faults: %d\n", cluster.Injector.Total())
	if res.Err != nil {
		fmt.Printf("request FAILED: %v\n", res.Err)
		fmt.Printf("recovery: retries=%d waits=%d failovers=%d fallbacks=%d reexecs=%d\n",
			res.Retries, res.PartitionWaits, res.Failovers, res.Fallbacks, res.Reexecs)
		os.Exit(1)
	}
	fmt.Printf("request completed: latency %v\n", res.Latency)
	fmt.Printf("  result: %+v\n", res.Output)
	fmt.Printf("  recovery: retries=%d (backoff %v under %v) waits=%d failovers=%d fallbacks=%d reexecs=%d\n",
		res.Retries, res.Meter.Get(simtime.CatRetry), simtime.CatRetry,
		res.PartitionWaits, res.Failovers, res.Fallbacks, res.Reexecs)
	if res.ReplicatedBytes > 0 || res.LeaseExpiries > 0 {
		fmt.Printf("  liveness: replicated %d bytes, lease expiries=%d\n",
			res.ReplicatedBytes, res.LeaseExpiries)
	}
	if *trace {
		fmt.Println("  execution timeline:")
		platform.WriteTrace(os.Stdout, res.Trace)
	}
}

func buildWorkflow(name string, small bool) (*platform.Workflow, error) {
	switch name {
	case "finra":
		cfg := workloads.DefaultFINRA()
		if small {
			cfg = workloads.SmallFINRA()
		}
		return workloads.FINRA(cfg), nil
	case "ml-training":
		cfg := workloads.DefaultMLTrain()
		if small {
			cfg = workloads.SmallMLTrain()
		}
		return workloads.MLTrain(cfg), nil
	case "ml-prediction":
		cfg := workloads.DefaultMLPredict()
		if small {
			cfg = workloads.SmallMLPredict()
		}
		return workloads.MLPredict(cfg), nil
	case "wordcount":
		cfg := workloads.DefaultWordCount()
		if small {
			cfg = workloads.SmallWordCount()
		}
		return workloads.WordCount(cfg), nil
	default:
		return nil, fmt.Errorf("unknown workflow %q", name)
	}
}
