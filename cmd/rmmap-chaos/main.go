// Command rmmap-chaos runs a built-in workflow under a seeded,
// deterministic fault-injection plan (DESIGN.md §7, §9) and reports what
// the recovery ladder did: transport retries, partition waits, replica
// failovers, messaging degradations, producer re-executions, and deadline
// sheds. It exits non-zero when any request exhausts its recovery budget.
//
// Usage:
//
//	rmmap-chaos [-workflow finra] [-small] [-seed 20260805] [-prob 0.1]
//	            [-crash-machine 1 -crash-at 100us] [-plan plan.json]
//	            [-topology two-rack | -topology topo.json]
//	            [-requests 1] [-deadline 0] [-replicas 1]
//	            [-no-replication] [-no-recovery] [-trace]
//	            [-ctrl-journal ctrl.save]
//
// A -plan file replaces the flag-built plan entirely (see
// cmd/rmmap-chaos/plans/ for examples including partitions and the
// coordinator crash/recovery schedules of DESIGN.md §13). -topology runs
// the same plan on a multi-rack cluster shape — a platformbuilder recipe
// or topology JSON file (PLATFORMS.md) — so faults land on machines with
// ToR/spine hop costs and link contention in play. -ctrl-journal dumps
// the coordinator's durable image (snapshot + journal tail) after the
// run; audit it with rmmap-plan -verify. For open-loop multi-tenant load
// against the same plans, see cmd/rmmap-load.
package main

import (
	"flag"
	"fmt"
	"os"

	"rmmap/internal/faults"
	"rmmap/internal/load"
	"rmmap/internal/memsim"
	"rmmap/internal/platform"
	"rmmap/internal/platformbuilder"
	"rmmap/internal/simtime"
)

func main() {
	name := flag.String("workflow", "finra", "workflow: finra, ml-training, ml-prediction, wordcount")
	small := flag.Bool("small", false, "use the small (test-scale) configuration")
	planPath := flag.String("plan", "", "JSON fault plan (overrides -seed/-prob/-crash-* flags)")
	seed := flag.Uint64("seed", 20260805, "fault-plan seed; same seed, same schedule")
	prob := flag.Float64("prob", 0.1, "transient-fault probability on remote reads, doorbells and RPCs")
	endpoint := flag.String("endpoint", "", "restrict the RPC rule to one endpoint (e.g. rmmap.auth)")
	crashMachine := flag.Int("crash-machine", -1, "machine to crash (-1: none)")
	crashAt := flag.Duration("crash-at", 0, "virtual-time instant of the crash (e.g. 100us)")
	requests := flag.Int("requests", 1, "back-to-back requests to run")
	deadline := flag.Duration("deadline", 0, "per-request deadline in virtual time (0: none); an expired request sheds instead of climbing the ladder")
	noRecovery := flag.Bool("no-recovery", false, "negative control: disable the recovery ladder")
	maxReexecs := flag.Int("max-reexecs", platform.DefaultMaxReexecutions, "producer re-execution budget per request")
	degradeAfter := flag.Int("degrade-after", platform.DefaultDegradeAfter, "edge failures before falling back to messaging")
	replicas := flag.Int("replicas", 0, "backup machines per registration (0: replication off)")
	noReplication := flag.Bool("no-replication", false, "force replication off even with -replicas set")
	machines := flag.Int("machines", 4, "cluster size")
	topology := flag.String("topology", "", "cluster shape: a platformbuilder recipe name or topology JSON file (see PLATFORMS.md); default flat")
	pods := flag.Int("pods", 16, "warm pods")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = all cores, 1 = sequential); the fault schedule and outcome are identical at any setting")
	ctrlShards := flag.Int("ctrl-shards", 0, "consistent-hash coordinator shards (0/1 = single coordinator); a plan's \"shard\" field can then target one shard's crash")
	trace := flag.Bool("trace", false, "print the per-invocation execution timeline")
	ctrlJournal := flag.String("ctrl-journal", "", "write the coordinator's durable image (snapshot + journal) to this file after the run")
	flag.Parse()

	wf, err := load.Workflow(*name, *small)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var plan faults.Plan
	if *planPath != "" {
		plan, err = faults.LoadPlan(*planPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		plan = faults.Plan{Seed: *seed}
		if *prob > 0 {
			plan.Rules = []faults.Rule{
				{Site: faults.SiteRDMARead, Target: faults.AnyMachine, Prob: *prob},
				{Site: faults.SiteDoorbell, Target: faults.AnyMachine, Prob: *prob},
				{Site: faults.SiteRPC, Target: faults.AnyMachine, Endpoint: *endpoint, Prob: *prob},
			}
		}
		if *crashMachine >= 0 {
			plan.Crashes = []faults.Crash{{
				Machine: memsim.MachineID(*crashMachine),
				At:      simtime.Time(crashAt.Nanoseconds()),
			}}
		}
	}

	rec := platform.DefaultRecoveryPolicy()
	rec.MaxReexecutions = *maxReexecs
	rec.DegradeAfter = *degradeAfter
	opts := platform.Options{
		Trace:         *trace,
		Recovery:      rec,
		Replicas:      *replicas,
		NoReplication: *noReplication,
		Workers:       *workers,
		CtrlShards:    *ctrlShards,
	}
	if *noRecovery {
		opts.Recovery = nil
	}
	// Both shapes flow through the same builder-backed assembly:
	// platformbuilder.Flat compiles to the flat spec platform.NewChaosCluster
	// uses, so the default is byte-identical to the pre-builder binary.
	shape := *topology
	if shape == "" {
		shape = "flat"
	}
	b, err := platformbuilder.Resolve(shape, *machines)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-topology: %v (known recipes: %v)\n", err, platformbuilder.Recipes())
		os.Exit(1)
	}
	cluster, err := b.WithChaos(plan, rec.Retry).Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster: %v\n", err)
		os.Exit(1)
	}
	defer cluster.Close()
	engine, err := platform.NewEngineOn(cluster, wf, platform.ModeRMMAPPrefetch, opts, *pods)
	if err != nil {
		fmt.Fprintf(os.Stderr, "engine: %v\n", err)
		os.Exit(1)
	}

	if *planPath != "" {
		fmt.Printf("plan: %s (seed=%d rules=%d crashes=%d partitions=%d coord-crashes=%d coord-partitions=%d)",
			*planPath, plan.Seed, len(plan.Rules), len(plan.Crashes), len(plan.Partitions),
			len(plan.CoordCrashes), len(plan.CoordPartitions))
	} else {
		fmt.Printf("plan: seed=%d prob=%g", *seed, *prob)
		if *crashMachine >= 0 {
			fmt.Printf(" crash=machine%d@%v", *crashMachine, simtime.Duration((*crashAt).Nanoseconds()))
		}
	}
	if *replicas > 0 && !*noReplication {
		fmt.Printf(" replicas=%d", *replicas)
	}
	if *noRecovery {
		fmt.Printf(" recovery=off")
	}
	if *deadline > 0 {
		fmt.Printf(" deadline=%v", simtime.Duration(deadline.Nanoseconds()))
	}
	fmt.Println()

	if *requests < 1 {
		*requests = 1
	}
	results := make([]platform.RunResult, 0, *requests)
	var submit func()
	submit = func() {
		engine.SubmitTenant(
			platform.SubmitInfo{Deadline: simtime.Duration(deadline.Nanoseconds())},
			func(out platform.RunResult) {
				results = append(results, out)
				if len(results) < *requests {
					submit()
				}
			})
	}
	submit()
	engine.Cluster.Sim.Run()

	fmt.Printf("injected faults: %d\n", cluster.Injector.Total())

	var completed, shed, failed int
	var retries, waits, failovers, degradations, reexecs int
	var backoff simtime.Duration
	for _, res := range results {
		retries += res.Retries
		waits += res.PartitionWaits
		failovers += res.Failovers
		degradations += res.Fallbacks
		reexecs += res.Reexecs
		backoff += res.Meter.Get(simtime.CatRetry)
		switch {
		case res.Shed:
			shed++
		case res.Err != nil:
			failed++
		default:
			completed++
		}
	}
	for i, res := range results {
		switch {
		case res.Shed:
			fmt.Printf("request %d SHED (%s) after %v: %v\n", i, res.ShedReason, res.Latency, res.Err)
		case res.Err != nil:
			fmt.Printf("request %d FAILED: %v\n", i, res.Err)
		default:
			fmt.Printf("request %d completed: latency %v result %+v\n", i, res.Latency, res.Output)
		}
	}
	fmt.Printf("requests: completed=%d shed=%d failed=%d\n", completed, shed, failed)
	fmt.Printf("recovery: retries=%d (backoff %v under %v) waits=%d failovers=%d degradations=%d reexecs=%d sheds=%d\n",
		retries, backoff, simtime.CatRetry, waits, failovers, degradations, reexecs, shed)
	if last := results[len(results)-1]; last.ReplicatedBytes > 0 || last.LeaseExpiries > 0 {
		fmt.Printf("liveness: replicated %d bytes, lease expiries=%d\n",
			last.ReplicatedBytes, last.LeaseExpiries)
	}
	cp := engine.ControlPlane()
	cs := cp.Stats()
	fmt.Printf("ctrl: shards=%d epoch=%d down=%v appends=%d journal=%dB snapshots=%d replays=%d crashes=%d recoveries=%d deferred=%d stale-routes=%d drift=%d/%d gossip-rounds=%d\n",
		cp.NumShards(), engine.Coordinator().Epoch(), cp.Down(), cs.Appends, cs.JournalBytes, cs.Snapshots, cs.Replays,
		cs.Crashes, cs.Recoveries, cs.Deferred, cs.StaleRoutes, cs.DriftDropped, cs.DriftAdopted, engine.GossipRounds())
	if *ctrlJournal != "" {
		if err := cp.SaveFile(*ctrlJournal); err != nil {
			fmt.Fprintf(os.Stderr, "ctrl-journal: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ctrl journal written to %s (audit with rmmap-plan -verify)\n", *ctrlJournal)
	}
	if *trace {
		fmt.Println("execution timeline (last request):")
		platform.WriteTrace(os.Stdout, results[len(results)-1].Trace)
	}
	// A failed (non-shed) request means the recovery ladder ran out of
	// rungs — budget exhausted. That is the non-zero exit the CI soak keys
	// off; deadline sheds are the overload layer working as designed.
	if failed > 0 {
		os.Exit(1)
	}
}
