// Command rmmap-bench regenerates the paper's tables and figures. Each
// experiment prints the rows/series of one figure of the evaluation (§5)
// or motivation (§2.3), plus four design ablations.
//
// Usage:
//
//	rmmap-bench -list
//	rmmap-bench [-scale 0.25] [fig11a fig14 ...]
//	rmmap-bench -json [-scale 0.25]
//	rmmap-bench -topology spine-leaf -json
//	rmmap-bench -cpuprofile cpu.pb.gz -memprofile mem.pb.gz fig14
//
// With no experiment IDs, all experiments run in registration order.
// -scale shrinks payload sizes for quick runs; 1.0 is the calibrated
// default documented in EXPERIMENTS.md. -json writes the machine-readable
// Fig 14 grid (per-mode latency, fabric reads, cache hit rate, and the
// faults/sec-per-core headline) to BENCH_fig14.json; combined with
// experiment IDs it also runs those. -topology runs the Fig-14 grid and
// the fan-out ablation on a multi-rack cluster shape — a platformbuilder
// recipe by name or a topology JSON file (recipes, JSON schema, and the
// link-cost model are documented in PLATFORMS.md); rows carry the shape in
// their "topology" field. -cpuprofile/-memprofile write pprof profiles of
// the run (heap taken at exit after a GC), for digging into hot-path
// regressions the benchmarks flag.
//
// For the overload/scale soak — open-loop multi-tenant load with
// deadlines and admission control, writing BENCH_scale.json — see
// cmd/rmmap-load.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rmmap/internal/bench"
	"rmmap/internal/platformbuilder"
)

func main() {
	// Profile finalizers are deferred inside run so they fire on every
	// path; os.Exit only happens here, after they have run.
	os.Exit(run())
}

func run() int {
	scale := flag.Float64("scale", 1.0, "payload scale factor in (0,1]")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "write the Fig 14 grid to BENCH_fig14.json")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = all cores, 1 = sequential); results are identical, only wall time changes")
	ctrlShards := flag.Int("ctrl-shards", 0, "consistent-hash coordinator shards (0/1 = single coordinator); results are identical at any setting")
	topology := flag.String("topology", "", "cluster shape for the Fig-14 grid and fan-out ablation: a recipe name ("+
		"see PLATFORMS.md) or a topology JSON file; default is the classic flat cluster")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this file (go tool pprof)")
	flag.Parse()
	bench.Workers = *workers
	bench.CtrlShards = *ctrlShards
	if *topology != "" {
		// Validate eagerly so a typo fails before any experiment runs.
		if _, err := platformbuilder.Resolve(*topology, 0); err != nil {
			fmt.Fprintf(os.Stderr, "-topology: %v (known recipes: %v)\n", err, platformbuilder.Recipes())
			return 1
		}
		bench.Topology = *topology
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-14s %s\n%-14s   expect: %s\n", e.ID, e.Title, "", e.Expect)
		}
		return 0
	}

	ids := flag.Args()
	if *jsonOut {
		f, err := os.Create("BENCH_fig14.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "BENCH_fig14.json: %v\n", err)
			return 1
		}
		if err := bench.WriteFig14JSON(f, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "fig14 json: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "BENCH_fig14.json: %v\n", err)
			return 1
		}
		fmt.Println("wrote BENCH_fig14.json")
		if len(ids) == 0 {
			return 0
		}
	}
	ran := 0
	for _, e := range bench.All() {
		if len(ids) > 0 && !contains(ids, e.ID) {
			continue
		}
		ran++
		fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
		fmt.Printf("expected shape: %s\n\n", e.Expect)
		start := time.Now()
		if err := e.Run(os.Stdout, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			return 1
		}
		fmt.Printf("\n(%s completed in %v wall time)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %v; known: %v\n", ids, bench.IDs())
		return 1
	}
	return 0
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
