// Command rmmap-net demonstrates the RMMAP protocol across a real network
// boundary: two simulated machines connected by the TCP fabric on
// loopback. The producer builds a trades dataframe and registers its heap;
// the consumer rmaps it over the socket and reads columns directly —
// every page it touches is fetched with a real network request, and no
// byte is ever serialized.
//
// Usage:
//
//	rmmap-net [-rows 5000] [-addr 127.0.0.1:0]
package main

import (
	"flag"
	"fmt"
	"os"

	"rmmap/internal/kernel"
	"rmmap/internal/memsim"
	"rmmap/internal/objrt"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
	"rmmap/internal/workloads"
)

func main() {
	rows := flag.Int("rows", 5000, "trade rows in the shared dataframe")
	addr := flag.String("addr", "127.0.0.1:0", "producer listen address")
	flag.Parse()
	if err := run(*rows, *addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(rows int, addr string) error {
	cm := simtime.DefaultCostModel()
	fabric := rdma.NewTCPFabric(cm)

	// Producer machine, serving its frames and kernel RPC over TCP.
	prodMach := memsim.NewMachine(0)
	prodK := kernel.New(prodMach, rdma.NewTCPNIC(prodMach, fabric), cm)
	srv, err := fabric.Serve(prodMach, addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	prodK.ServeTCP(srv)
	fmt.Printf("producer serving frames + RMMAP RPC on %s\n", srv.Addr())

	prodAS := memsim.NewAddressSpace(prodMach, cm)
	prodAS.SetMeter(simtime.NewMeter())
	const heapStart, heapEnd = uint64(0x1_0000_0000), uint64(0x1_4000_0000)
	prodRT, err := objrt.NewRuntime(prodAS, objrt.Config{HeapStart: heapStart, HeapEnd: heapEnd})
	if err != nil {
		return err
	}
	df, err := workloads.GenTrades(prodRT, rows, 42)
	if err != nil {
		return err
	}
	used := (prodRT.Heap().Used() + memsim.PageSize) &^ uint64(memsim.PageSize-1)
	meta, err := prodK.RegisterMem(prodAS, 7, 1234, heapStart, used)
	if err != nil {
		return err
	}
	fmt.Printf("producer: %d-row dataframe at %#x, registered [%#x,%#x) — %d pages, CoW-marked\n",
		rows, df.Addr, meta.Start, meta.End, meta.Pages)

	// Consumer machine on a disjoint heap (the address plan's job).
	consMach := memsim.NewMachine(1)
	consNIC := rdma.NewTCPNIC(consMach, fabric)
	defer consNIC.Close()
	consK := kernel.New(consMach, consNIC, cm)
	consAS := memsim.NewAddressSpace(consMach, cm)
	meter := simtime.NewMeter()
	consAS.SetMeter(meter)
	consRT, err := objrt.NewRuntime(consAS, objrt.Config{HeapStart: 0x9_0000_0000, HeapEnd: 0x9_4000_0000})
	if err != nil {
		return err
	}

	mp, err := consK.Rmap(consAS, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		return err
	}
	defer mp.Unmap()
	fmt.Printf("consumer: rmapped %d remote pages over TCP\n", mp.RemotePages())

	view := df.View(consRT)
	ref := consRT.AdoptRemote(view, mp)
	defer ref.Release()

	price, err := view.Column("price")
	if err != nil {
		return err
	}
	pv, err := price.Data()
	if err != nil {
		return err
	}
	sum := 0.0
	for _, p := range pv {
		sum += p
	}
	sym, err := view.Column("symbol")
	if err != nil {
		return err
	}
	first, err := sym.Index(0)
	if err != nil {
		return err
	}
	s, err := first.Str()
	if err != nil {
		return err
	}
	fmt.Printf("consumer: avg price %.2f over %d trades, symbol[0]=%q — read through remote pointers\n",
		sum/float64(len(pv)), len(pv), s)
	fmt.Printf("consumer: %d page faults served over the wire; modeled charges: %v\n",
		consAS.Faults(), meter)
	fmt.Println("no serialization or deserialization happened on this path.")
	return nil
}
