// Command rmmap-workflow runs one of the built-in serverless workflows
// under a chosen state-transfer mode and prints the request latency, the
// per-category work breakdown, and the workflow's functional result.
//
// Usage:
//
//	rmmap-workflow [-workflow finra] [-mode rmmap-prefetch] [-small] [-requests 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"rmmap/internal/platform"
	"rmmap/internal/simtime"
	"rmmap/internal/workloads"
)

func main() {
	name := flag.String("workflow", "finra", "workflow: finra, ml-training, ml-prediction, wordcount")
	modeName := flag.String("mode", "rmmap-prefetch",
		"transfer mode: messaging, pocket, drtm, rmmap, rmmap-prefetch")
	small := flag.Bool("small", false, "use the small (test-scale) configuration")
	requests := flag.Int("requests", 1, "requests to run back to back (warm containers)")
	trace := flag.Bool("trace", false, "print the per-invocation execution timeline")
	tcp := flag.Bool("tcp", false, "connect the cluster's machines over real loopback TCP sockets")
	flag.Parse()

	mode, err := parseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wf, err := buildWorkflow(*name, *small)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := platform.DefaultClusterConfig()
	var engine *platform.Engine
	if *tcp {
		cluster, closeCluster, err := platform.NewClusterTCP(cfg.Machines, simtime.DefaultCostModel())
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcp cluster: %v\n", err)
			os.Exit(1)
		}
		defer closeCluster()
		engine, err = platform.NewEngineOn(cluster, wf, mode, platform.Options{Trace: *trace}, cfg.Pods)
		if err != nil {
			fmt.Fprintf(os.Stderr, "engine: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("cluster: %d machines over real TCP sockets\n", cfg.Machines)
	} else {
		var err error
		engine, err = platform.NewEngine(wf, mode, platform.Options{Trace: *trace}, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "engine: %v\n", err)
			os.Exit(1)
		}
	}
	for r := 0; r < *requests; r++ {
		var res platform.RunResult
		engine.Submit(func(out platform.RunResult) { res = out })
		engine.Cluster.Sim.Run()
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "request %d failed: %v\n", r, res.Err)
			os.Exit(1)
		}
		fmt.Printf("request %d: latency %v (mode %v)\n", r, res.Latency, mode)
		fmt.Printf("  result: %+v\n", res.Output)
		fmt.Printf("  total work: %v  transfer: %v (%.1f%%)\n",
			res.Meter.Total(), res.Meter.TransferTotal(),
			100*float64(res.Meter.TransferTotal())/float64(res.Meter.Total()))
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		var fns []string
		for fn := range res.PerFunction {
			fns = append(fns, fn)
		}
		sort.Strings(fns)
		fmt.Fprintln(tw, "  function\twork\tserdes\tregister+map\tfault\tnetwork+storage")
		for _, fn := range fns {
			m := res.PerFunction[fn]
			fmt.Fprintf(tw, "  %s\t%v\t%v\t%v\t%v\t%v\n", fn, m.Total(), m.SerTotal(),
				m.Get(simtime.CatRegister)+m.Get(simtime.CatMap), m.Get(simtime.CatFault),
				m.Get(simtime.CatNetwork)+m.Get(simtime.CatStorage))
		}
		tw.Flush()
		if *trace {
			fmt.Println("  execution timeline:")
			platform.WriteTrace(os.Stdout, res.Trace)
		}
	}
}

func parseMode(s string) (platform.Mode, error) {
	switch s {
	case "messaging":
		return platform.ModeMessaging, nil
	case "pocket":
		return platform.ModeStoragePocket, nil
	case "drtm":
		return platform.ModeStorageDrTM, nil
	case "rmmap":
		return platform.ModeRMMAP, nil
	case "rmmap-prefetch":
		return platform.ModeRMMAPPrefetch, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func buildWorkflow(name string, small bool) (*platform.Workflow, error) {
	switch name {
	case "finra":
		cfg := workloads.DefaultFINRA()
		if small {
			cfg = workloads.SmallFINRA()
		}
		return workloads.FINRA(cfg), nil
	case "ml-training":
		cfg := workloads.DefaultMLTrain()
		if small {
			cfg = workloads.SmallMLTrain()
		}
		return workloads.MLTrain(cfg), nil
	case "ml-prediction":
		cfg := workloads.DefaultMLPredict()
		if small {
			cfg = workloads.SmallMLPredict()
		}
		return workloads.MLPredict(cfg), nil
	case "wordcount":
		cfg := workloads.DefaultWordCount()
		if small {
			cfg = workloads.SmallWordCount()
		}
		return workloads.WordCount(cfg), nil
	default:
		return nil, fmt.Errorf("unknown workflow %q", name)
	}
}
