// Command rmmap-plan prints the static virtual-memory plan (§4.2) the
// platform generates for one of the built-in workflows: a disjoint address
// range (and segment layout) per function instance.
//
// With -verify it instead audits a coordinator save file (written by
// rmmap-chaos -ctrl-journal, DESIGN.md §13, §15): each shard's snapshot is
// loaded, its journal tail replayed, and every journaled address-plan slot
// — across ALL shards — checked against the same disjointness rule
// Plan.Validate enforces at issuance. Both the legacy single-coordinator
// save and the sharded "RMCSHRD1" container are accepted. A violation
// prints the offending slots (naming their shards) and exits non-zero —
// the post-hoc proof that no shard crash/recovery or mis-routed issuance
// ever journaled overlapping address ranges.
//
// Usage:
//
//	rmmap-plan [-workflow finra|ml-training|ml-prediction|wordcount] [-full]
//	rmmap-plan -verify ctrl.save
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"rmmap/internal/ctrl"
	"rmmap/internal/platform"
	"rmmap/internal/workloads"
)

func main() {
	name := flag.String("workflow", "finra", "workflow: finra, ml-training, ml-prediction, wordcount")
	full := flag.Bool("full", false, "print every instance slot (default: first/last per type)")
	asJSON := flag.Bool("json", false, "emit the plan as JSON (the form stored with the workflow, §4.2)")
	verify := flag.String("verify", "", "audit a coordinator save file (rmmap-chaos -ctrl-journal): replay it and check the journaled slots for overlaps")
	flag.Parse()

	if *verify != "" {
		if code := runVerify(*verify, os.Stdout, os.Stderr); code != 0 {
			os.Exit(code)
		}
		return
	}

	wf, err := builtinWorkflow(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan, err := platform.GeneratePlan(wf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plan generation failed: %v\n", err)
		os.Exit(1)
	}
	if err := plan.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "plan invalid: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workflow %q: %d functions, %d instance slots, plan verified disjoint\n\n",
		wf.Name, len(wf.Functions), len(plan.Slots()))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "slot\trange\ttext\theap\tstack")
	lastFn := ""
	slots := plan.Slots()
	for i, id := range slots {
		if !*full {
			nextDiffers := i+1 >= len(slots) || slots[i+1].Function != id.Function
			if id.Function == lastFn && !nextDiffers {
				continue // show first and last instance per type
			}
		}
		lastFn = id.Function
		l, _ := plan.Slot(id)
		fmt.Fprintf(tw, "%s\t[%#x,%#x)\t[%#x,%#x)\t[%#x,%#x)\t[%#x,%#x)\n",
			id, l.Start, l.End, l.TextStart, l.TextEnd, l.HeapStart, l.HeapEnd, l.StackStart, l.StackEnd)
	}
	tw.Flush()
}

// runVerify audits a coordinator save file (either format): per-shard
// summary, then the cross-shard disjointness check over the union of
// every shard's journaled slots. Returns the process exit code: 0 clean,
// 1 unreadable, 2 plan invalid.
func runVerify(path string, stdout, stderr io.Writer) int {
	states, err := ctrl.LoadShardStatesFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "load %s: %v\n", path, err)
		return 1
	}
	var all []shardSlot
	for _, ss := range states {
		prefix := path
		if len(states) > 1 {
			prefix = fmt.Sprintf("%s shard %d", path, ss.Shard)
		}
		fmt.Fprintf(stdout, "%s: epoch %d, %d slots, %d live registrations, %d placements (%d journal records replayed)\n",
			prefix, ss.State.Epoch, len(ss.State.Slots), len(ss.State.Regs), len(ss.State.Places), ss.Replayed)
		for _, sl := range ss.State.Slots {
			all = append(all, shardSlot{slot: sl, shard: ss.Shard, sharded: len(states) > 1})
		}
	}
	if err := verifyShardSlots(all); err != nil {
		fmt.Fprintf(stderr, "plan invalid: %v\n", err)
		return 2
	}
	if len(states) > 1 {
		fmt.Fprintf(stdout, "plan verified: %d journaled slots disjoint across %d shards\n", len(all), len(states))
	} else {
		fmt.Fprintf(stdout, "plan verified: %d journaled slots disjoint\n", len(all))
	}
	return 0
}

// shardSlot is one journaled slot tagged with its owning shard; sharded
// selects the "(shard N)" error rendering for multi-shard saves.
type shardSlot struct {
	slot    ctrl.PlanSlot
	shard   int
	sharded bool
}

func (s shardSlot) String() string {
	if s.sharded {
		return fmt.Sprintf("%s#%d (shard %d)", s.slot.Fn, s.slot.Inst, s.shard)
	}
	return fmt.Sprintf("%s#%d", s.slot.Fn, s.slot.Inst)
}

// verifySlots applies Plan.Validate's rules to one coordinator's journaled
// slots: every range must be well-formed and pairwise disjoint. The
// returned error names the offending slot as fn#inst.
func verifySlots(slots []ctrl.PlanSlot) error {
	tagged := make([]shardSlot, len(slots))
	for i, sl := range slots {
		tagged[i] = shardSlot{slot: sl}
	}
	return verifyShardSlots(tagged)
}

// verifyShardSlots is the cross-shard audit: the union of every shard's
// slots must be pairwise disjoint — shard journals partition the plan,
// they never partition the address space, so an overlap between two
// shards is as fatal as one within a shard. Errors name both slots (and,
// on sharded saves, both shards).
func verifyShardSlots(slots []shardSlot) error {
	sorted := append([]shardSlot(nil), slots...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].slot.Start != sorted[j].slot.Start {
			return sorted[i].slot.Start < sorted[j].slot.Start
		}
		return sorted[i].slot.End < sorted[j].slot.End
	})
	for i, s := range sorted {
		if s.slot.End <= s.slot.Start {
			return fmt.Errorf("slot %s: empty or inverted range [%#x,%#x)", s, s.slot.Start, s.slot.End)
		}
		if i > 0 {
			prev := sorted[i-1]
			if s.slot.Start < prev.slot.End {
				return fmt.Errorf("slot %s [%#x,%#x) overlaps %s [%#x,%#x)",
					s, s.slot.Start, s.slot.End, prev, prev.slot.Start, prev.slot.End)
			}
		}
	}
	return nil
}

func builtinWorkflow(name string) (*platform.Workflow, error) {
	switch name {
	case "finra":
		return workloads.FINRA(workloads.DefaultFINRA()), nil
	case "ml-training":
		return workloads.MLTrain(workloads.DefaultMLTrain()), nil
	case "ml-prediction":
		return workloads.MLPredict(workloads.DefaultMLPredict()), nil
	case "wordcount":
		return workloads.WordCount(workloads.DefaultWordCount()), nil
	default:
		return nil, fmt.Errorf("unknown workflow %q", name)
	}
}
