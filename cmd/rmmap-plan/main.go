// Command rmmap-plan prints the static virtual-memory plan (§4.2) the
// platform generates for one of the built-in workflows: a disjoint address
// range (and segment layout) per function instance.
//
// Usage:
//
//	rmmap-plan [-workflow finra|ml-training|ml-prediction|wordcount] [-full]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"rmmap/internal/platform"
	"rmmap/internal/workloads"
)

func main() {
	name := flag.String("workflow", "finra", "workflow: finra, ml-training, ml-prediction, wordcount")
	full := flag.Bool("full", false, "print every instance slot (default: first/last per type)")
	asJSON := flag.Bool("json", false, "emit the plan as JSON (the form stored with the workflow, §4.2)")
	flag.Parse()

	wf, err := builtinWorkflow(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan, err := platform.GeneratePlan(wf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plan generation failed: %v\n", err)
		os.Exit(1)
	}
	if err := plan.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "plan invalid: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workflow %q: %d functions, %d instance slots, plan verified disjoint\n\n",
		wf.Name, len(wf.Functions), len(plan.Slots()))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "slot\trange\ttext\theap\tstack")
	lastFn := ""
	slots := plan.Slots()
	for i, id := range slots {
		if !*full {
			nextDiffers := i+1 >= len(slots) || slots[i+1].Function != id.Function
			if id.Function == lastFn && !nextDiffers {
				continue // show first and last instance per type
			}
		}
		lastFn = id.Function
		l, _ := plan.Slot(id)
		fmt.Fprintf(tw, "%s\t[%#x,%#x)\t[%#x,%#x)\t[%#x,%#x)\t[%#x,%#x)\n",
			id, l.Start, l.End, l.TextStart, l.TextEnd, l.HeapStart, l.HeapEnd, l.StackStart, l.StackEnd)
	}
	tw.Flush()
}

func builtinWorkflow(name string) (*platform.Workflow, error) {
	switch name {
	case "finra":
		return workloads.FINRA(workloads.DefaultFINRA()), nil
	case "ml-training":
		return workloads.MLTrain(workloads.DefaultMLTrain()), nil
	case "ml-prediction":
		return workloads.MLPredict(workloads.DefaultMLPredict()), nil
	case "wordcount":
		return workloads.WordCount(workloads.DefaultWordCount()), nil
	default:
		return nil, fmt.Errorf("unknown workflow %q", name)
	}
}
