// Command rmmap-plan prints the static virtual-memory plan (§4.2) the
// platform generates for one of the built-in workflows: a disjoint address
// range (and segment layout) per function instance.
//
// With -verify it instead audits a coordinator save file (written by
// rmmap-chaos -ctrl-journal, DESIGN.md §13): the snapshot is loaded, the
// journal tail replayed, and every journaled address-plan slot checked
// against the same disjointness rule Plan.Validate enforces at issuance.
// A violation prints the offending slot and exits non-zero — the post-hoc
// proof that no coordinator crash/recovery ever journaled overlapping
// address ranges.
//
// Usage:
//
//	rmmap-plan [-workflow finra|ml-training|ml-prediction|wordcount] [-full]
//	rmmap-plan -verify ctrl.save
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"rmmap/internal/ctrl"
	"rmmap/internal/platform"
	"rmmap/internal/workloads"
)

func main() {
	name := flag.String("workflow", "finra", "workflow: finra, ml-training, ml-prediction, wordcount")
	full := flag.Bool("full", false, "print every instance slot (default: first/last per type)")
	asJSON := flag.Bool("json", false, "emit the plan as JSON (the form stored with the workflow, §4.2)")
	verify := flag.String("verify", "", "audit a coordinator save file (rmmap-chaos -ctrl-journal): replay it and check the journaled slots for overlaps")
	flag.Parse()

	if *verify != "" {
		st, replayed, err := ctrl.LoadStateFile(*verify)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load %s: %v\n", *verify, err)
			os.Exit(1)
		}
		fmt.Printf("%s: epoch %d, %d slots, %d live registrations, %d placements (%d journal records replayed)\n",
			*verify, st.Epoch, len(st.Slots), len(st.Regs), len(st.Places), replayed)
		if err := verifySlots(st.Slots); err != nil {
			fmt.Fprintf(os.Stderr, "plan invalid: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("plan verified: %d journaled slots disjoint\n", len(st.Slots))
		return
	}

	wf, err := builtinWorkflow(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan, err := platform.GeneratePlan(wf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plan generation failed: %v\n", err)
		os.Exit(1)
	}
	if err := plan.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "plan invalid: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workflow %q: %d functions, %d instance slots, plan verified disjoint\n\n",
		wf.Name, len(wf.Functions), len(plan.Slots()))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "slot\trange\ttext\theap\tstack")
	lastFn := ""
	slots := plan.Slots()
	for i, id := range slots {
		if !*full {
			nextDiffers := i+1 >= len(slots) || slots[i+1].Function != id.Function
			if id.Function == lastFn && !nextDiffers {
				continue // show first and last instance per type
			}
		}
		lastFn = id.Function
		l, _ := plan.Slot(id)
		fmt.Fprintf(tw, "%s\t[%#x,%#x)\t[%#x,%#x)\t[%#x,%#x)\t[%#x,%#x)\n",
			id, l.Start, l.End, l.TextStart, l.TextEnd, l.HeapStart, l.HeapEnd, l.StackStart, l.StackEnd)
	}
	tw.Flush()
}

// verifySlots applies Plan.Validate's rules to journaled slots: every
// range must be well-formed and pairwise disjoint. The returned error
// names the offending slot as fn#inst.
func verifySlots(slots []ctrl.PlanSlot) error {
	sorted := append([]ctrl.PlanSlot(nil), slots...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	for i, s := range sorted {
		if s.End <= s.Start {
			return fmt.Errorf("slot %s#%d: empty or inverted range [%#x,%#x)", s.Fn, s.Inst, s.Start, s.End)
		}
		if i > 0 {
			prev := sorted[i-1]
			if s.Start < prev.End {
				return fmt.Errorf("slot %s#%d [%#x,%#x) overlaps %s#%d [%#x,%#x)",
					s.Fn, s.Inst, s.Start, s.End, prev.Fn, prev.Inst, prev.Start, prev.End)
			}
		}
	}
	return nil
}

func builtinWorkflow(name string) (*platform.Workflow, error) {
	switch name {
	case "finra":
		return workloads.FINRA(workloads.DefaultFINRA()), nil
	case "ml-training":
		return workloads.MLTrain(workloads.DefaultMLTrain()), nil
	case "ml-prediction":
		return workloads.MLPredict(workloads.DefaultMLPredict()), nil
	case "wordcount":
		return workloads.WordCount(workloads.DefaultWordCount()), nil
	default:
		return nil, fmt.Errorf("unknown workflow %q", name)
	}
}
