package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rmmap/internal/ctrl"
	"rmmap/internal/simtime"
)

// TestVerifySlotsRoundTrip journals a disjoint plan, saves the durable
// image, reloads it the way -verify does, and expects a clean audit.
func TestVerifySlotsRoundTrip(t *testing.T) {
	c := ctrl.New(simtime.DefaultCostModel())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.IssueSlot("produce", 0, 0x10000, 0x20000); err != nil {
		t.Fatal(err)
	}
	if err := c.IssueSlot("sink", 0, 0x20000, 0x30000); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ctrl.save")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	st, replayed, err := ctrl.LoadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 || len(st.Slots) != 2 {
		t.Fatalf("replayed=%d slots=%d, want a replayed 2-slot journal", replayed, len(st.Slots))
	}
	if err := verifySlots(st.Slots); err != nil {
		t.Fatalf("disjoint plan failed verification: %v", err)
	}
}

// TestVerifySlotsRejectsOverlap: the audit must name the offending slot
// and refuse overlapping or malformed ranges.
func TestVerifySlotsRejectsOverlap(t *testing.T) {
	err := verifySlots([]ctrl.PlanSlot{
		{Fn: "produce", Inst: 0, Start: 0x10000, End: 0x20000},
		{Fn: "transform", Inst: 1, Start: 0x18000, End: 0x28000},
	})
	if err == nil {
		t.Fatal("overlapping slots passed verification")
	}
	if !strings.Contains(err.Error(), "transform#1") || !strings.Contains(err.Error(), "produce#0") {
		t.Fatalf("error does not name both offending slots: %v", err)
	}
	if err := verifySlots([]ctrl.PlanSlot{{Fn: "x", Inst: 0, Start: 8, End: 8}}); err == nil {
		t.Fatal("empty range passed verification")
	}
}

// TestRunVerifyCrossShardOverlap builds two shard journals whose slots
// overlap ACROSS shards (each shard is internally disjoint), frames them
// into the sharded save container, and runs the full -verify path: it
// must exit 2 and name both shards in the error.
func TestRunVerifyCrossShardOverlap(t *testing.T) {
	cm := simtime.DefaultCostModel()
	c0 := ctrl.New(cm)
	c1 := ctrl.New(cm)
	for i, c := range []*ctrl.Coordinator{c0, c1} {
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if err := c.StampShard(i, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 0: [0x10000,0x20000). Shard 1: [0x18000,0x28000) — the overlap
	// only exists in the cross-shard union.
	if err := c0.IssueSlot("produce", 0, 0x10000, 0x20000); err != nil {
		t.Fatal(err)
	}
	if err := c1.IssueSlot("transform", 1, 0x18000, 0x28000); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ctrl.save")
	blob := ctrl.EncodeShardedSave([][]byte{c0.Save(), c1.Save()})
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr strings.Builder
	code := runVerify(path, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("runVerify exit code = %d, want 2\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	msg := stderr.String()
	for _, want := range []string{"produce#0", "shard 0", "transform#1", "shard 1", "overlaps"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("verify error missing %q:\n%s", want, msg)
		}
	}
	if !strings.Contains(stdout.String(), "shard 1: epoch 1") {
		t.Fatalf("per-shard summary missing:\n%s", stdout.String())
	}

	// The same layout with the overlap removed (shard 0 rebuilt with a
	// disjoint range) must verify cleanly, with a cross-shard summary line.
	c2 := ctrl.New(cm)
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c2.StampShard(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := c2.IssueSlot("produce", 0, 0x10000, 0x18000); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, ctrl.EncodeShardedSave([][]byte{c2.Save(), c1.Save()}), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := runVerify(path, &stdout, &stderr); code != 0 {
		t.Fatalf("disjoint sharded save failed verification (code %d):\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "across 2 shards") {
		t.Fatalf("clean sharded verify missing cross-shard summary:\n%s", stdout.String())
	}
}
