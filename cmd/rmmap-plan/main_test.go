package main

import (
	"path/filepath"
	"strings"
	"testing"

	"rmmap/internal/ctrl"
	"rmmap/internal/simtime"
)

// TestVerifySlotsRoundTrip journals a disjoint plan, saves the durable
// image, reloads it the way -verify does, and expects a clean audit.
func TestVerifySlotsRoundTrip(t *testing.T) {
	c := ctrl.New(simtime.DefaultCostModel())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.IssueSlot("produce", 0, 0x10000, 0x20000); err != nil {
		t.Fatal(err)
	}
	if err := c.IssueSlot("sink", 0, 0x20000, 0x30000); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ctrl.save")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	st, replayed, err := ctrl.LoadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 || len(st.Slots) != 2 {
		t.Fatalf("replayed=%d slots=%d, want a replayed 2-slot journal", replayed, len(st.Slots))
	}
	if err := verifySlots(st.Slots); err != nil {
		t.Fatalf("disjoint plan failed verification: %v", err)
	}
}

// TestVerifySlotsRejectsOverlap: the audit must name the offending slot
// and refuse overlapping or malformed ranges.
func TestVerifySlotsRejectsOverlap(t *testing.T) {
	err := verifySlots([]ctrl.PlanSlot{
		{Fn: "produce", Inst: 0, Start: 0x10000, End: 0x20000},
		{Fn: "transform", Inst: 1, Start: 0x18000, End: 0x28000},
	})
	if err == nil {
		t.Fatal("overlapping slots passed verification")
	}
	if !strings.Contains(err.Error(), "transform#1") || !strings.Contains(err.Error(), "produce#0") {
		t.Fatalf("error does not name both offending slots: %v", err)
	}
	if err := verifySlots([]ctrl.PlanSlot{{Fn: "x", Inst: 0, Start: 8, End: 8}}); err == nil {
		t.Fatal("empty range passed verification")
	}
}
