package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func smokeConfig(dir string) config {
	return config{
		workload: "WordCount", mode: "rmmap-prefetch",
		scale: 0.02, requests: 1, machines: 4, pods: 8,
		metricsPath: filepath.Join(dir, "metrics.json"),
		chromePath:  filepath.Join(dir, "trace.json"),
		jsonlPath:   filepath.Join(dir, "spans.jsonl"),
		profilePath: filepath.Join(dir, "profile.folded"),
	}
}

func TestSmokeArtifacts(t *testing.T) {
	dir := t.TempDir()
	cfg := smokeConfig(dir)
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	// Chrome trace parses and has events.
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	mustUnmarshalFile(t, cfg.chromePath, &trace)
	if len(trace.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}
	// Metrics snapshot parses and carries canonical names + aliases.
	var metrics struct {
		Counters []struct {
			Name string `json:"name"`
		} `json:"counters"`
		Aliases map[string]string `json:"deprecated_aliases"`
	}
	mustUnmarshalFile(t, cfg.metricsPath, &metrics)
	if len(metrics.Counters) == 0 || len(metrics.Aliases) == 0 {
		t.Errorf("metrics snapshot incomplete: %d counters, %d aliases",
			len(metrics.Counters), len(metrics.Aliases))
	}
	// Profile is nonempty folded lines "stack weight".
	prof, err := os.ReadFile(cfg.profilePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(prof)), "\n")
	if len(lines) == 0 || !strings.Contains(lines[0], " ") {
		t.Errorf("profile not folded stacks:\n%s", prof)
	}
	// JSONL: every line parses.
	jsonl, err := os.ReadFile(cfg.jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(jsonl)), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("jsonl line %d: %v", i, err)
		}
	}
}

func TestSmokeDeterministic(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	var out bytes.Buffer
	if err := run(smokeConfig(a), &out); err != nil {
		t.Fatal(err)
	}
	if err := run(smokeConfig(b), &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"metrics.json", "trace.json", "spans.jsonl", "profile.folded"} {
		x, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		y, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(x, y) {
			t.Errorf("%s differs between two identical runs", name)
		}
	}
}

func TestListAndBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(config{list: true}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WordCount", "rmmap(prefetch)", "messaging"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
	if err := run(config{workload: "nope", mode: "rmmap", scale: 1}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(config{workload: "FINRA", mode: "nope", scale: 1}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(config{workload: "FINRA", mode: "rmmap", scale: 7}, &out); err == nil {
		t.Error("out-of-range scale accepted")
	}
}

func TestParseModeAliases(t *testing.T) {
	for in, want := range map[string]string{
		"messaging":       "messaging",
		"storage-pocket":  "storage(pocket)",
		"storage-rdma":    "storage(rdma)",
		"rmmap-prefetch":  "rmmap(prefetch)",
		"rmmap(prefetch)": "rmmap(prefetch)",
	} {
		m, err := parseMode(in)
		if err != nil {
			t.Errorf("parseMode(%q): %v", in, err)
			continue
		}
		if m.String() != want {
			t.Errorf("parseMode(%q) = %s, want %s", in, m, want)
		}
	}
}

func mustUnmarshalFile(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}
