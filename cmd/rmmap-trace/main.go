// Command rmmap-trace runs one registered workload under one transfer mode
// and emits observability artifacts: a canonical metrics snapshot, a Chrome
// trace-event JSON (load it in chrome://tracing or https://ui.perfetto.dev),
// a flat JSONL span dump, and a folded virtual-time profile (flamegraph.pl
// / speedscope input).
//
// Usage:
//
//	rmmap-trace -list
//	rmmap-trace -workload FINRA -mode "rmmap(prefetch)" [-scale 0.25] \
//	    [-requests 3] [-topology spine-leaf] [-metrics metrics.json] \
//	    [-chrome-trace trace.json] [-jsonl spans.jsonl] \
//	    [-profile profile.folded]
//	rmmap-trace -workload ML-prediction -openloop 200 -duration 500ms \
//	    -metrics metrics.json
//
// -topology runs the workload on a multi-rack cluster shape (a
// platformbuilder recipe name or topology JSON file — see PLATFORMS.md);
// spans then carry "tor", "spine", and "linkwait" categories in their
// breakdowns, so the Chrome trace shows where hop latency and link
// queueing land.
//
// Modes accept the report names (messaging, storage(pocket), storage(rdma),
// rmmap, rmmap(prefetch)) and flag-friendly aliases (storage-pocket,
// storage-rdma, rmmap-prefetch). Runs are deterministic: the same workload,
// mode, and scale produce byte-identical artifacts on every rerun.
//
// With -openloop R requests are submitted at R req/s of virtual time for
// -duration; metrics then include the latency percentile histogram, but no
// span artifacts are written (open-loop runs discard per-request traces).
// If some open-loop requests fail, the -metrics snapshot is still written
// for the completed ones before the failure sets the exit status.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rmmap/internal/bench"
	"rmmap/internal/obs"
	"rmmap/internal/platform"
	"rmmap/internal/platformbuilder"
	"rmmap/internal/simtime"
)

type config struct {
	workload   string
	mode       string
	scale      float64
	requests   int
	openRate   float64
	duration   time.Duration
	machines   int
	pods       int
	ctrlShards int
	topology   string

	metricsPath string
	chromePath  string
	jsonlPath   string
	profilePath string
	list        bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.workload, "workload", "FINRA", "registered workload name (see -list)")
	flag.StringVar(&cfg.mode, "mode", "rmmap(prefetch)", "transfer mode (see -list)")
	flag.Float64Var(&cfg.scale, "scale", 1.0, "payload scale factor in (0,1]")
	flag.IntVar(&cfg.requests, "requests", 1, "sequential requests to run and aggregate")
	flag.Float64Var(&cfg.openRate, "openloop", 0, "open-loop request rate (req/s of virtual time); 0 = closed single/sequential runs")
	flag.DurationVar(&cfg.duration, "duration", 2*time.Second, "virtual duration of the open-loop run")
	flag.IntVar(&cfg.machines, "machines", 10, "cluster machines")
	flag.IntVar(&cfg.pods, "pods", 80, "cluster pods")
	flag.IntVar(&cfg.ctrlShards, "ctrl-shards", 0, "consistent-hash coordinator shards (0/1 = single coordinator); artifacts are identical at any setting")
	flag.StringVar(&cfg.topology, "topology", "", "cluster shape: a platformbuilder recipe name or topology JSON file (see PLATFORMS.md); default flat")
	flag.StringVar(&cfg.metricsPath, "metrics", "", "write canonical metrics snapshot JSON here")
	flag.StringVar(&cfg.chromePath, "chrome-trace", "", "write Chrome trace-event JSON here")
	flag.StringVar(&cfg.jsonlPath, "jsonl", "", "write flat span JSONL here")
	flag.StringVar(&cfg.profilePath, "profile", "", "write folded virtual-time profile here")
	flag.BoolVar(&cfg.list, "list", false, "list workloads and modes, then exit")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rmmap-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config, out io.Writer) error {
	if cfg.list {
		fmt.Fprintln(out, "workloads:")
		for _, w := range bench.Workflows(1) {
			fmt.Fprintf(out, "  %s\n", w.Name)
		}
		fmt.Fprintln(out, "modes:")
		for _, m := range platform.AllModes() {
			fmt.Fprintf(out, "  %s\n", m)
		}
		return nil
	}
	if cfg.scale <= 0 || cfg.scale > 1 {
		return fmt.Errorf("scale %v outside (0,1]", cfg.scale)
	}
	builder, err := findWorkload(cfg.workload, cfg.scale)
	if err != nil {
		return err
	}
	mode, err := parseMode(cfg.mode)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	opts := platform.Options{Trace: true, Obs: reg, CtrlShards: cfg.ctrlShards}
	clCfg := platform.ClusterConfig{Machines: cfg.machines, Pods: cfg.pods}
	if cfg.topology != "" {
		b, err := platformbuilder.Resolve(cfg.topology, cfg.machines)
		if err != nil {
			return fmt.Errorf("-topology: %w (known recipes: %v)", err, platformbuilder.Recipes())
		}
		spec, err := b.Spec()
		if err != nil {
			return err
		}
		clCfg.Spec = &spec
	}
	e, err := platform.NewEngine(builder.Build(), mode, opts, clCfg)
	if err != nil {
		return err
	}

	var spans []platform.Span
	var runErr error
	if cfg.openRate > 0 {
		res := e.RunOpenLoop(cfg.openRate, simtime.Duration(cfg.duration.Nanoseconds()))
		fmt.Fprintf(out, "%s / %s open loop: %d requests at %.1f req/s, throughput %.1f req/s\n",
			builder.Name, mode, res.Completed, cfg.openRate, res.Throughput())
		if res.Errors > 0 {
			// The registry already holds the completed requests' metrics;
			// keep going so -metrics still captures them, and surface the
			// failure as the exit status afterwards.
			runErr = fmt.Errorf("open loop: %d of %d requests failed", res.Errors, res.Errors+res.Completed)
		}
		if res.Completed > 0 {
			h := res.LatencyHistogram()
			fmt.Fprintf(out, "latency p50=%v p90=%v p99=%v\n",
				simtime.Duration(h.Quantile(0.50)), simtime.Duration(h.Quantile(0.90)),
				simtime.Duration(h.Quantile(0.99)))
		}
		if cfg.chromePath != "" || cfg.jsonlPath != "" || cfg.profilePath != "" {
			fmt.Fprintln(out, "note: span artifacts are not produced for open-loop runs")
		}
	} else {
		if cfg.requests < 1 {
			cfg.requests = 1
		}
		var last platform.RunResult
		for i := 0; i < cfg.requests; i++ {
			res, err := e.Run()
			if err != nil {
				return fmt.Errorf("request %d: %w", i+1, err)
			}
			spans = append(spans, res.Trace...)
			last = res
		}
		fmt.Fprintf(out, "%s / %s: %d request(s), last latency %v\n",
			builder.Name, mode, cfg.requests, last.Latency)
		for _, entry := range platform.BuildProfile(builder.Name, spans).ByCategory() {
			fmt.Fprintf(out, "  %-12s %v\n", entry.Category, entry.Total)
		}
		if err := writeSpanArtifacts(cfg, builder.Name, spans, out); err != nil {
			return err
		}
	}

	if cfg.metricsPath != "" {
		if err := writeFile(cfg.metricsPath, func(w io.Writer) error {
			return reg.Snapshot().WriteJSON(w)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", cfg.metricsPath)
	}
	return runErr
}

func writeSpanArtifacts(cfg config, workflow string, spans []platform.Span, out io.Writer) error {
	if cfg.chromePath != "" {
		if err := writeFile(cfg.chromePath, func(w io.Writer) error {
			return obs.ChromeTrace(w, platform.ExportSpans(spans))
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", cfg.chromePath)
	}
	if cfg.jsonlPath != "" {
		if err := writeFile(cfg.jsonlPath, func(w io.Writer) error {
			return obs.WriteSpansJSONL(w, platform.ExportSpans(spans))
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", cfg.jsonlPath)
	}
	if cfg.profilePath != "" {
		if err := writeFile(cfg.profilePath, func(w io.Writer) error {
			return platform.BuildProfile(workflow, spans).WriteFolded(w)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (folded stacks; feed to flamegraph.pl or speedscope)\n", cfg.profilePath)
	}
	return nil
}

func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

func findWorkload(name string, scale float64) (bench.WorkflowBuilder, error) {
	var names []string
	for _, w := range bench.Workflows(scale) {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
		names = append(names, w.Name)
	}
	return bench.WorkflowBuilder{}, fmt.Errorf("unknown workload %q; known: %s",
		name, strings.Join(names, ", "))
}

// parseMode resolves a transfer mode from its report name or a
// flag-friendly alias.
func parseMode(s string) (platform.Mode, error) {
	alias := map[string]string{
		"storage-pocket": "storage(pocket)",
		"storage-rdma":   "storage(rdma)",
		"storage-drtm":   "storage(rdma)",
		"rmmap-prefetch": "rmmap(prefetch)",
	}
	want := strings.ToLower(s)
	if a, ok := alias[want]; ok {
		want = a
	}
	var names []string
	for _, m := range platform.AllModes() {
		if m.String() == want {
			return m, nil
		}
		names = append(names, m.String())
	}
	return 0, fmt.Errorf("unknown mode %q; known: %s (aliases: storage-pocket, storage-rdma, rmmap-prefetch)",
		s, strings.Join(names, ", "))
}
