// Package rmmap is the public API of the RMMAP reproduction — an OS
// primitive for remote memory map that eliminates serialization and
// deserialization when transferring state between serverless functions
// (EuroSys 2024).
//
// The package re-exports the stable surface of the internal layers:
//
//   - the memory substrate (machines, address spaces) and RDMA fabric,
//   - the RMMAP kernel primitive (register_mem / rmap / deregister_mem),
//   - the managed object runtime (heaps, pickle codec, prefetch, GC),
//   - the serverless platform (workflows, plans, engines, transfer modes).
//
// Quick start — two machines, one state, zero serialization:
//
//	cluster := rmmap.NewCluster(2, rmmap.DefaultCostModel())
//	engine, _ := rmmap.NewEngineOn(cluster, workflow, rmmap.ModeRMMAPPrefetch, rmmap.Options{}, 4)
//	result, _ := engine.Run()
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package rmmap

import (
	"rmmap/internal/kernel"
	"rmmap/internal/memsim"
	"rmmap/internal/objrt"
	"rmmap/internal/platform"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

// --- virtual time and cost model ---

type (
	// Time is a point in virtual time (nanoseconds).
	Time = simtime.Time
	// Duration is a span of virtual time (nanoseconds).
	Duration = simtime.Duration
	// Meter accumulates per-category virtual-time charges.
	Meter = simtime.Meter
	// CostModel holds the calibrated unit costs (DESIGN.md §2).
	CostModel = simtime.CostModel
	// Category labels a meter charge (compute, serialize, fault, …).
	Category = simtime.Category
)

// Common durations.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
)

// NewMeter returns an empty meter.
func NewMeter() *Meter { return simtime.NewMeter() }

// DefaultCostModel returns the paper-calibrated cost model.
func DefaultCostModel() *CostModel { return simtime.DefaultCostModel() }

// --- memory substrate ---

type (
	// Machine is a simulated host with a pool of physical frames.
	Machine = memsim.Machine
	// MachineID identifies a machine (the mac_addr of rmap).
	MachineID = memsim.MachineID
	// AddressSpace is one container's virtual address space.
	AddressSpace = memsim.AddressSpace
	// VPN is a virtual page number.
	VPN = memsim.VPN
	// PFN is a physical frame number.
	PFN = memsim.PFN
)

// PageSize is the simulated page size (4 KiB).
const PageSize = memsim.PageSize

// NewMachine returns an empty machine.
func NewMachine(id MachineID) *Machine { return memsim.NewMachine(id) }

// NewAddressSpace returns an empty address space on m.
func NewAddressSpace(m *Machine, cm *CostModel) *AddressSpace {
	return memsim.NewAddressSpace(m, cm)
}

// --- RDMA fabric ---

type (
	// Fabric is the simulated RDMA interconnect.
	Fabric = rdma.SimFabric
	// NIC is one machine's fabric client.
	NIC = rdma.NIC
	// Transport is the per-machine view the kernel uses.
	Transport = rdma.Transport
)

// NewFabric returns an empty fabric charging from cm.
func NewFabric(cm *CostModel) *Fabric { return rdma.NewSimFabric(cm) }

// NewNIC returns a NIC for machine owner on fabric f.
func NewNIC(owner MachineID, f *Fabric) *NIC { return rdma.NewNIC(owner, f) }

// --- the RMMAP kernel primitive ---

type (
	// Kernel is one machine's RMMAP kernel module (Table 1).
	Kernel = kernel.Kernel
	// Mapping is a live rmap of a producer's memory into a consumer.
	Mapping = kernel.Mapping
	// VMMeta identifies a registration (what the producer ships to
	// consumers via the coordinator).
	VMMeta = kernel.VMMeta
	// FuncID identifies the registering function.
	FuncID = kernel.FuncID
	// Key is the registration authentication secret.
	Key = kernel.Key
	// PageCache is the machine-level remote page cache.
	PageCache = kernel.PageCache
	// CacheStats snapshots page-cache and readahead activity.
	CacheStats = kernel.CacheStats
)

// NewKernel returns a kernel for machine m using transport t.
func NewKernel(m *Machine, t Transport, cm *CostModel) *Kernel {
	return kernel.New(m, t, cm)
}

// --- the managed object runtime ---

type (
	// Runtime is a container's language runtime (heap + GC + codec).
	Runtime = objrt.Runtime
	// RuntimeConfig configures a runtime.
	RuntimeConfig = objrt.Config
	// Obj is a typed view of an object at a virtual address.
	Obj = objrt.Obj
	// Lang selects Python or Java runtime semantics.
	Lang = objrt.Lang
	// TreeNode is a decision-tree node (the ML model element type).
	TreeNode = objrt.TreeNode
	// PrefetchPlan is a traversal-derived page set (§4.4).
	PrefetchPlan = objrt.PrefetchPlan
	// RemoteRef is the hybrid GC's proxy for a remotely mapped root.
	RemoteRef = objrt.RemoteRef
)

// Runtime language modes.
const (
	LangPython = objrt.LangPython
	LangJava   = objrt.LangJava
)

// NewRuntime creates a runtime on as.
func NewRuntime(as *AddressSpace, cfg RuntimeConfig) (*Runtime, error) {
	return objrt.NewRuntime(as, cfg)
}

// Pickle serializes an object graph (the cost the baselines pay).
func Pickle(root Obj, meter *Meter) ([]byte, objrt.PickleStats, error) {
	return objrt.Pickle(root, meter)
}

// Unpickle reconstructs a pickled graph onto rt's heap.
func Unpickle(rt *Runtime, data []byte, meter *Meter) (Obj, error) {
	return objrt.Unpickle(rt, data, meter)
}

// PlanPrefetch derives a state's page set by graph traversal (§4.4).
func PlanPrefetch(root Obj, maxObjects int, meter *Meter) (*PrefetchPlan, error) {
	return objrt.PlanPrefetch(root, maxObjects, meter)
}

// ObjEqual deep-compares two objects across heaps.
func ObjEqual(a, b Obj) (bool, error) { return objrt.Equal(a, b) }

// --- the serverless platform ---

type (
	// Workflow is a DAG of serverless functions.
	Workflow = platform.Workflow
	// FunctionSpec declares one function type.
	FunctionSpec = platform.FunctionSpec
	// Edge declares a state transfer between function types.
	Edge = platform.Edge
	// Handler is a serverless function body.
	Handler = platform.Handler
	// Ctx is what a handler sees at invocation.
	Ctx = platform.Ctx
	// Engine executes workflows on a cluster under one transfer mode.
	Engine = platform.Engine
	// Cluster is the physical substrate (machines + kernels + clock).
	Cluster = platform.Cluster
	// ClusterConfig sizes a cluster.
	ClusterConfig = platform.ClusterConfig
	// Mode selects the state-transfer mechanism.
	Mode = platform.Mode
	// Options tunes a run (prefetch policy, scopes, fault injection…).
	Options = platform.Options
	// RunResult reports one request.
	RunResult = platform.RunResult
	// LoadResult reports an open/closed-loop load run.
	LoadResult = platform.LoadResult
	// Plan is the §4.2 static address-space plan.
	Plan = platform.Plan
	// Spec is the JSON-serializable workflow description.
	Spec = platform.Spec
	// HandlerRegistry binds spec handler names to implementations.
	HandlerRegistry = platform.HandlerRegistry
	// Span is one traced invocation.
	Span = platform.Span
)

// Transfer modes (the comparison axis of every figure in §5).
const (
	ModeMessaging     = platform.ModeMessaging
	ModeStoragePocket = platform.ModeStoragePocket
	ModeStorageDrTM   = platform.ModeStorageDrTM
	ModeRMMAP         = platform.ModeRMMAP
	ModeRMMAPPrefetch = platform.ModeRMMAPPrefetch
)

// NewCluster builds n machines with RMMAP kernels on a shared fabric.
func NewCluster(n int, cm *CostModel) *Cluster { return platform.NewCluster(n, cm) }

// NewClusterTCP builds a cluster connected over real loopback sockets.
func NewClusterTCP(n int, cm *CostModel) (*Cluster, func(), error) {
	return platform.NewClusterTCP(n, cm)
}

// NewEngine builds an engine for one workflow and transfer mode on a
// fresh cluster.
func NewEngine(wf *Workflow, mode Mode, opts Options, cfg ClusterConfig) (*Engine, error) {
	return platform.NewEngine(wf, mode, opts, cfg)
}

// NewEngineOn builds an engine on an existing cluster.
func NewEngineOn(cluster *Cluster, wf *Workflow, mode Mode, opts Options, pods int) (*Engine, error) {
	return platform.NewEngineOn(cluster, wf, mode, opts, pods)
}

// GeneratePlan produces the static per-instance address plan (§4.2).
func GeneratePlan(wf *Workflow) (*Plan, error) { return platform.GeneratePlan(wf) }

// ParseSpec decodes an uploaded workflow spec.
func ParseSpec(data []byte) (Spec, error) { return platform.ParseSpec(data) }

// AllModes lists every transfer mode in report order.
func AllModes() []Mode { return platform.AllModes() }

// DefaultClusterConfig mirrors the paper's 10-machine testbed.
func DefaultClusterConfig() ClusterConfig { return platform.DefaultClusterConfig() }
