// Benchmarks: one testing.B target per paper table/figure plus the four
// ablations, each delegating to the experiment registry in internal/bench.
// Tables are written to io.Discard here; run cmd/rmmap-bench to see them.
//
// Typical usage:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// benchScale keeps the default `go test -bench` wall time reasonable;
// cmd/rmmap-bench runs scale 1.0.
package rmmap_test

import (
	"io"
	"testing"

	"rmmap/internal/bench"
)

const benchScale = 0.1

func runExperiment(b *testing.B, id string) {
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchScale); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig3StateTransferShare(b *testing.B)    { runExperiment(b, "fig3") }
func BenchmarkFig5DeserShare(b *testing.B)            { runExperiment(b, "fig5") }
func BenchmarkFig11aDataTypes(b *testing.B)           { runExperiment(b, "fig11a") }
func BenchmarkFig11bPayloadSweep(b *testing.B)        { runExperiment(b, "fig11b") }
func BenchmarkFig12Throughput(b *testing.B)           { runExperiment(b, "fig12") }
func BenchmarkFig13aEpochs(b *testing.B)              { runExperiment(b, "fig13a") }
func BenchmarkFig13bTensor(b *testing.B)              { runExperiment(b, "fig13b") }
func BenchmarkFig13cWidth(b *testing.B)               { runExperiment(b, "fig13c") }
func BenchmarkFig13dJava(b *testing.B)                { runExperiment(b, "fig13d") }
func BenchmarkFig14EndToEnd(b *testing.B)             { runExperiment(b, "fig14") }
func BenchmarkFig15Factors(b *testing.B)              { runExperiment(b, "fig15") }
func BenchmarkFig16aMemory(b *testing.B)              { runExperiment(b, "fig16a") }
func BenchmarkFig16bNaos(b *testing.B)                { runExperiment(b, "fig16b") }
func BenchmarkAblationPrefetchThreshold(b *testing.B) { runExperiment(b, "abl-prefetch") }
func BenchmarkAblationDoorbell(b *testing.B)          { runExperiment(b, "abl-batch") }
func BenchmarkAblationConnectPath(b *testing.B)       { runExperiment(b, "abl-conn") }
func BenchmarkAblationMapScope(b *testing.B)          { runExperiment(b, "abl-scope") }
func BenchmarkComparisonRemoteFork(b *testing.B)      { runExperiment(b, "abl-fork") }
func BenchmarkExtensionMultiHopForward(b *testing.B)  { runExperiment(b, "abl-forward") }
func BenchmarkExtensionAdaptivePrefetch(b *testing.B) { runExperiment(b, "abl-adaptive") }
func BenchmarkAblationCompression(b *testing.B)       { runExperiment(b, "abl-compress") }
func BenchmarkComparisonArrow(b *testing.B)           { runExperiment(b, "abl-arrow") }
