module rmmap

go 1.23
