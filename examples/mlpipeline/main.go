// ML pipeline example: chain the paper's two ML workflows — train a random
// forest with the ORION-style training DAG, then serve predictions with the
// prediction DAG — both with RMMAP state transfer. Demonstrates that a real
// model (trees with internal pointers) crosses function and machine
// boundaries with zero reconstruction, and that results match the
// messaging baseline bit for bit.
//
// Run: go run ./examples/mlpipeline
package main

import (
	"fmt"
	"log"

	"rmmap/internal/platform"
	"rmmap/internal/workloads"
)

func main() {
	trainCfg := workloads.DefaultMLTrain()
	trainCfg.Images = 800

	fmt.Println("phase 1: ML training workflow (partition → 2×PCA → 8×train → merge)")
	for _, mode := range []platform.Mode{platform.ModeMessaging, platform.ModeRMMAPPrefetch} {
		engine, err := platform.NewEngine(workloads.MLTrain(trainCfg), mode, platform.Options{},
			platform.DefaultClusterConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run()
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		out := res.Output.(workloads.MLTrainResult)
		fmt.Printf("  %-16v latency %v  forest: %d trees, holdout accuracy %.3f\n",
			mode, res.Latency, out.Trees, out.Accuracy)
	}

	predCfg := workloads.DefaultMLPredict()
	predCfg.Images = 800

	fmt.Println("\nphase 2: ML prediction workflow (partition → 16×predict → combine)")
	var acc []float64
	for _, mode := range []platform.Mode{platform.ModeMessaging, platform.ModeRMMAPPrefetch} {
		engine, err := platform.NewEngine(workloads.MLPredict(predCfg), mode, platform.Options{},
			platform.DefaultClusterConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run()
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		out := res.Output.(workloads.MLPredictResult)
		acc = append(acc, out.Accuracy)
		fmt.Printf("  %-16v latency %v  %d predictions, accuracy %.3f\n",
			mode, res.Latency, out.Predictions, out.Accuracy)
	}
	if acc[0] != acc[1] {
		log.Fatalf("modes disagree: %.4f vs %.4f", acc[0], acc[1])
	}
	fmt.Println("\nboth modes produce identical predictions; RMMAP just skips the (de)serialization.")
}
