// Specfile example: the developer-facing deployment path of §4.2. A
// workflow arrives as a declarative JSON spec (what you would upload to
// the platform), handlers are bound through a registry, the platform
// generates the static address plan, persists it alongside the workflow,
// and executes requests against the restored plan.
//
// Run: go run ./examples/specfile
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"rmmap/internal/objrt"
	"rmmap/internal/platform"
)

const specJSON = `{
  "name": "etl",
  "functions": [
    {"name": "extract",   "instances": 1, "handler": "extract"},
    {"name": "transform", "instances": 4, "mem_budget_mb": 2048, "handler": "transform"},
    {"name": "load",      "instances": 1, "handler": "load"}
  ],
  "edges": [["extract", "transform"], ["transform", "load"]]
}`

func registry() platform.HandlerRegistry {
	return platform.HandlerRegistry{
		"extract": func(ctx *platform.Ctx) (objrt.Obj, error) {
			rows := make([]int64, 4000)
			for i := range rows {
				rows[i] = int64(i * i)
			}
			return ctx.RT.NewIntList(rows)
		},
		"transform": func(ctx *platform.Ctx) (objrt.Obj, error) {
			in := ctx.Inputs[0]
			n, err := in.Len()
			if err != nil {
				return objrt.Obj{}, err
			}
			// Each instance folds its quarter of the rows.
			lo, hi := ctx.Instance*n/ctx.Instances, (ctx.Instance+1)*n/ctx.Instances
			sum := int64(0)
			for i := lo; i < hi; i++ {
				e, err := in.Index(i)
				if err != nil {
					return objrt.Obj{}, err
				}
				v, err := e.Int()
				if err != nil {
					return objrt.Obj{}, err
				}
				sum += v
			}
			return ctx.RT.NewIntList([]int64{sum})
		},
		"load": func(ctx *platform.Ctx) (objrt.Obj, error) {
			total := int64(0)
			for _, in := range ctx.Inputs {
				e, err := in.Index(0)
				if err != nil {
					return objrt.Obj{}, err
				}
				v, err := e.Int()
				if err != nil {
					return objrt.Obj{}, err
				}
				total += v
			}
			ctx.Report(total)
			return objrt.Obj{}, nil
		},
	}
}

func main() {
	// 1. Parse the uploaded spec and bind handlers.
	spec, err := platform.ParseSpec([]byte(specJSON))
	if err != nil {
		log.Fatal(err)
	}
	wf, err := spec.Build(registry())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded workflow %q: %d function types\n", wf.Name, len(wf.Functions))

	// 2. Generate the static VM plan and persist it with the workflow.
	plan, err := platform.GeneratePlan(wf)
	if err != nil {
		log.Fatal(err)
	}
	stored, err := json.Marshal(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d disjoint slots, %d bytes stored alongside the workflow\n",
		len(plan.Slots()), len(stored))

	// 3. Restore the plan (a later execution) — corruption is rejected at
	// load time by the disjointness check.
	var restored platform.Plan
	if err := json.Unmarshal(stored, &restored); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored plan validates:", restored.Validate() == nil)

	// 4. Execute under RMMAP.
	engine, err := platform.NewEngine(wf, platform.ModeRMMAPPrefetch, platform.Options{},
		platform.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request completed in %v, sum of squares = %v\n", res.Latency, res.Output)
}
