// Quickstart: the RMMAP primitive end to end, in five steps.
//
//  1. Build a producer container (address space + object heap) and put a
//     Python-like object graph on it.
//  2. register_mem: CoW-mark and shadow the producer's heap.
//  3. rmap: map the producer's heap into a consumer on another machine.
//  4. Read the producer's pointers directly from the consumer — remote
//     pages fault in over (simulated) RDMA; nothing is serialized.
//  5. Release the remote root: the hybrid GC unmaps the remote heap.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rmmap/internal/kernel"
	"rmmap/internal/memsim"
	"rmmap/internal/objrt"
	"rmmap/internal/rdma"
	"rmmap/internal/simtime"
)

func main() {
	cm := simtime.DefaultCostModel()
	fabric := rdma.NewSimFabric(cm)

	// Two machines with RMMAP kernels on one RDMA fabric.
	prodMach, consMach := memsim.NewMachine(0), memsim.NewMachine(1)
	fabric.Attach(prodMach)
	fabric.Attach(consMach)
	prodK := kernel.New(prodMach, rdma.NewNIC(0, fabric), cm)
	consK := kernel.New(consMach, rdma.NewNIC(1, fabric), cm)
	prodK.ServeRPC(fabric)
	consK.ServeRPC(fabric)

	// Step 1: producer heap with a nested object graph. The two heaps use
	// disjoint ranges — in the full platform the VM plan guarantees this.
	prodAS := memsim.NewAddressSpace(prodMach, cm)
	prodAS.SetMeter(simtime.NewMeter())
	prodRT, err := objrt.NewRuntime(prodAS, objrt.Config{
		HeapStart: 0x1_0000_0000, HeapEnd: 0x1_1000_0000,
	})
	check(err)
	nums, err := prodRT.NewIntList([]int64{3, 1, 4, 1, 5, 9, 2, 6})
	check(err)
	key, err := prodRT.NewStr("digits")
	check(err)
	state, err := prodRT.NewDict([][2]objrt.Obj{{key, nums}})
	check(err)
	fmt.Printf("producer built state at %#x\n", state.Addr)

	// Step 2: register_mem.
	meta, err := prodK.RegisterMem(prodAS, 1, 0xC0FFEE, 0x1_0000_0000, 0x1_0000_0000+16*memsim.PageSize)
	check(err)
	fmt.Printf("registered %d pages (CoW-marked, shadowed)\n", meta.Pages)

	// Step 3: rmap at the consumer.
	consAS := memsim.NewAddressSpace(consMach, cm)
	meter := simtime.NewMeter()
	consAS.SetMeter(meter)
	consRT, err := objrt.NewRuntime(consAS, objrt.Config{
		HeapStart: 0x9_0000_0000, HeapEnd: 0x9_1000_0000,
	})
	check(err)
	mp, err := consK.Rmap(consAS, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	check(err)
	ref := consRT.AdoptRemote(state.View(consRT), mp)

	// Step 4: dereference remote pointers. The dict lookup below chases
	// producer-heap addresses; each new page costs one fault + RDMA read.
	val, ok, err := ref.Root.DictGet("digits")
	check(err)
	if !ok {
		log.Fatal("key missing")
	}
	n, err := val.Len()
	check(err)
	sum := int64(0)
	for i := 0; i < n; i++ {
		e, err := val.Index(i)
		check(err)
		v, err := e.Int()
		check(err)
		sum += v
	}
	fmt.Printf("consumer summed %d remote ints = %d (faults: %d, charges: %v)\n",
		n, sum, consAS.Faults(), meter)

	// Step 5: hybrid GC — releasing the root unmaps the remote heap.
	check(ref.Release())
	if _, err := ref.Root.Len(); err != nil {
		fmt.Println("after release, the remote heap is unmapped (read correctly fails)")
	}
	check(prodK.DeregisterMem(meta.ID, meta.Key))
	fmt.Println("deregistered; shadow pages reclaimed. No (de)serialization anywhere.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
