// WordCount example: the FunctionBench MapReduce workflow in both Python
// and Java runtime modes (§5.7 / Fig 13d). The Java mode exercises
// CDS-shared type metadata: every container maps the same class-data
// archive, so klass IDs embedded in one function's objects resolve
// identically in another's — the type-safety half of §4.3.
//
// Run: go run ./examples/wordcount
package main

import (
	"fmt"
	"log"

	"rmmap/internal/objrt"
	"rmmap/internal/platform"
	"rmmap/internal/workloads"
)

func main() {
	for _, lang := range []objrt.Lang{objrt.LangPython, objrt.LangJava} {
		cfg := workloads.DefaultWordCount()
		cfg.BookBytes = 1 << 20
		cfg.Lang = lang
		fmt.Printf("%s runtime, %d-byte book, %d mappers\n", lang, cfg.BookBytes, cfg.Mappers)
		for _, mode := range []platform.Mode{platform.ModeMessaging, platform.ModeStorageDrTM, platform.ModeRMMAPPrefetch} {
			engine, err := platform.NewEngine(workloads.WordCount(cfg), mode, platform.Options{},
				platform.DefaultClusterConfig())
			if err != nil {
				log.Fatal(err)
			}
			res, err := engine.Run()
			if err != nil {
				log.Fatalf("%v: %v", mode, err)
			}
			out := res.Output.(workloads.WordCountResult)
			fmt.Printf("  %-16v latency %v  %d words, %d distinct, top %q\n",
				mode, res.Latency, out.TotalWords, out.DistinctWords, out.TopWord)
		}
		fmt.Println()
	}
}
