// Cascade example: the §4.4 cascading-state-transfer problem and both of
// its solutions. In A→B→C, function B passes A's state through unchanged.
// The deployed design deep-copies A's state onto B's heap before serving
// it to C; the multi-hop extension (the paper's future-work sketch,
// implemented here) forwards A's registration to C instead, so C maps A
// directly and B does no copy at all.
//
// Run: go run ./examples/cascade
package main

import (
	"fmt"
	"log"

	"rmmap/internal/objrt"
	"rmmap/internal/platform"
	"rmmap/internal/simtime"
)

func cascade(n int) *platform.Workflow {
	return &platform.Workflow{
		Name: "cascade",
		Functions: []*platform.FunctionSpec{
			{Name: "A", Instances: 1, Handler: func(ctx *platform.Ctx) (objrt.Obj, error) {
				vals := make([]int64, n)
				for i := range vals {
					vals[i] = int64(i)
				}
				return ctx.RT.NewIntList(vals)
			}},
			{Name: "B", Instances: 1, Handler: func(ctx *platform.Ctx) (objrt.Obj, error) {
				// Pure passthrough: B forwards A's state to C.
				return ctx.Inputs[0], nil
			}},
			{Name: "C", Instances: 1, Handler: func(ctx *platform.Ctx) (objrt.Obj, error) {
				in := ctx.Inputs[0]
				cnt, err := in.Len()
				if err != nil {
					return objrt.Obj{}, err
				}
				sum := int64(0)
				for i := 0; i < cnt; i++ {
					e, err := in.Index(i)
					if err != nil {
						return objrt.Obj{}, err
					}
					v, err := e.Int()
					if err != nil {
						return objrt.Obj{}, err
					}
					sum += v
				}
				ctx.Report(sum)
				return objrt.Obj{}, nil
			}},
		},
		Edges: []platform.Edge{{From: "A", To: "B"}, {From: "B", To: "C"}},
	}
}

func main() {
	const n = 100000
	fmt.Printf("A→B→C with a %d-int state, B is a pure passthrough\n\n", n)
	for _, forward := range []bool{false, true} {
		engine, err := platform.NewEngine(cascade(n), platform.ModeRMMAP,
			platform.Options{ForwardRemote: forward}, platform.DefaultClusterConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run()
		if err != nil {
			log.Fatal(err)
		}
		name := "copy-based cascade (deployed design, §4.4)"
		if forward {
			name = "multi-hop forwarding (future work, implemented)"
		}
		fmt.Printf("%s\n", name)
		fmt.Printf("  latency %v  B's copy compute: %v  B registered: %v\n",
			res.Latency,
			res.PerFunction["B"].Get(simtime.CatCompute),
			res.PerFunction["B"].Get(simtime.CatRegister))
		fmt.Printf("  C's sum: %v (identical either way)\n\n", res.Output)
	}
}
