// FINRA example: the paper's motivating workflow (Fig 1) on the full
// platform — two fetch functions produce trade dataframes, 200 audit
// rules validate them concurrently, one merge collects the violations.
// The example runs the same request under every transfer mode and prints
// the latency table, showing where RMMAP's win comes from.
//
// Run: go run ./examples/finra
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rmmap/internal/platform"
	"rmmap/internal/simtime"
	"rmmap/internal/workloads"
)

func main() {
	cfg := workloads.DefaultFINRA()
	cfg.Rows = 8000 // keep the example snappy; rmmap-bench runs full scale
	cfg.Rules = 50

	fmt.Printf("FINRA: %d trade rows per feed, %d concurrent audit rules\n\n", cfg.Rows, cfg.Rules)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tlatency\tser+des\ttransfer work\tviolations")
	var baseline simtime.Duration
	for _, mode := range platform.AllModes() {
		engine, err := platform.NewEngine(workloads.FINRA(cfg), mode, platform.Options{},
			platform.DefaultClusterConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run()
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		out := res.Output.(workloads.FINRAResult)
		if mode == platform.ModeMessaging {
			baseline = res.Latency
		}
		fmt.Fprintf(tw, "%v\t%v (%.2fx vs messaging)\t%v\t%v\t%d\n",
			mode, res.Latency, float64(baseline)/float64(res.Latency),
			res.Meter.SerTotal(), res.Meter.TransferTotal(), out.Violations)
	}
	tw.Flush()
	fmt.Println("\nEvery mode computes identical violations — only the transfer mechanism differs.")
}
