package rmmap

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Documentation invariants, enforced alongside the code they describe
// (CI also runs a standalone grep so the failure is visible as its own
// step): every internal package carries non-trivial godoc in a doc.go, and
// every relative markdown link in the repo's docs resolves.

// TestInternalPackageDocs: each internal/* package must have a doc.go whose
// package comment is long enough to actually say something (the ISSUE-4
// bar: the paper mechanism it models and its invariants).
func TestInternalPackageDocs(t *testing.T) {
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		path := filepath.Join("internal", d.Name(), "doc.go")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("package internal/%s has no doc.go: %v", d.Name(), err)
			continue
		}
		text := string(data)
		if !strings.Contains(text, "// Package "+d.Name()) {
			t.Errorf("%s does not start its comment with %q", path, "// Package "+d.Name())
		}
		if lines := strings.Count(text, "\n//"); lines < 5 {
			t.Errorf("%s is trivial (%d comment lines); document the mechanism and invariants", path, lines)
		}
	}
}

// mdLink matches [text](target) while skipping images' extra bang.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks: relative links in the repo's markdown must point at
// files (or files#anchor) that exist.
func TestMarkdownLinks(t *testing.T) {
	mds, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(mds) < 5 {
		t.Fatalf("expected the repo's doc set, found only %v", mds)
	}
	for _, md := range mds {
		// SNIPPETS.md and PAPERS.md quote external repos/papers verbatim;
		// their links point at files those repos have and we don't.
		if md == "SNIPPETS.md" || md == "PAPERS.md" {
			continue
		}
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "chrome://") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // pure in-page anchor
			}
			if _, err := os.Stat(filepath.Join(filepath.Dir(md), target)); err != nil {
				t.Errorf("%s: broken link %q", md, m[1])
			}
		}
	}
}
