// Facade tests: the public rmmap package must be sufficient on its own for
// the two ways downstream users consume the library — the raw primitive
// (register/rmap/read) and the platform (workflow + engine).
package rmmap_test

import (
	"testing"

	"rmmap"
)

func TestPublicAPIPrimitive(t *testing.T) {
	cm := rmmap.DefaultCostModel()
	fabric := rmmap.NewFabric(cm)
	prodMach := rmmap.NewMachine(0)
	consMach := rmmap.NewMachine(1)
	fabric.Attach(prodMach)
	fabric.Attach(consMach)
	prodK := rmmap.NewKernel(prodMach, rmmap.NewNIC(0, fabric), cm)
	consK := rmmap.NewKernel(consMach, rmmap.NewNIC(1, fabric), cm)
	prodK.ServeRPC(fabric)

	prodAS := rmmap.NewAddressSpace(prodMach, cm)
	prodAS.SetMeter(rmmap.NewMeter())
	prodRT, err := rmmap.NewRuntime(prodAS, rmmap.RuntimeConfig{
		HeapStart: 0x1000_0000, HeapEnd: 0x1100_0000,
	})
	if err != nil {
		t.Fatal(err)
	}
	state, err := prodRT.NewIntList([]int64{4, 8, 15, 16, 23, 42})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := prodK.RegisterMem(prodAS, 1, 99, 0x1000_0000, 0x1000_0000+16*rmmap.PageSize)
	if err != nil {
		t.Fatal(err)
	}

	consAS := rmmap.NewAddressSpace(consMach, cm)
	consAS.SetMeter(rmmap.NewMeter())
	consRT, err := rmmap.NewRuntime(consAS, rmmap.RuntimeConfig{
		HeapStart: 0x9000_0000, HeapEnd: 0x9100_0000,
	})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := consK.Rmap(consAS, meta.Machine, meta.ID, meta.Key, meta.Start, meta.End)
	if err != nil {
		t.Fatal(err)
	}
	ref := consRT.AdoptRemote(state.View(consRT), mp)
	sum := int64(0)
	n, _ := ref.Root.Len()
	for i := 0; i < n; i++ {
		e, err := ref.Root.Index(i)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := e.Int()
		sum += v
	}
	if sum != 108 {
		t.Errorf("sum = %d", sum)
	}
	if err := ref.Release(); err != nil {
		t.Fatal(err)
	}
	if err := prodK.DeregisterMem(meta.ID, meta.Key); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIPlatform(t *testing.T) {
	wf := &rmmap.Workflow{
		Name: "public",
		Functions: []*rmmap.FunctionSpec{
			{Name: "p", Instances: 1, Handler: func(ctx *rmmap.Ctx) (rmmap.Obj, error) {
				return ctx.RT.NewIntList(make([]int64, 500))
			}},
			{Name: "c", Instances: 1, Handler: func(ctx *rmmap.Ctx) (rmmap.Obj, error) {
				n, err := ctx.Inputs[0].Len()
				ctx.Report(n)
				return rmmap.Obj{}, err
			}},
		},
		Edges: []rmmap.Edge{{From: "p", To: "c"}},
	}
	plan, err := rmmap.GeneratePlan(wf)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range rmmap.AllModes() {
		engine, err := rmmap.NewEngine(wf, mode, rmmap.Options{},
			rmmap.ClusterConfig{Machines: 2, Pods: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Output.(int) != 500 {
			t.Errorf("%v: output %v", mode, res.Output)
		}
	}
}
